//! Seeded synthetic FoodKG generator — the scaling substitute for the
//! real FoodKG \[5\], which is built from public recipe dumps we cannot
//! ship.
//!
//! The generator preserves the statistical shape that reasoner and query
//! performance depend on: a long-tailed (Zipf-like) ingredient-reuse
//! distribution (a few pantry staples appear in most recipes), seasonal
//! and regional availability on a fraction of ingredients, and category /
//! nutrient tags drawn from the curated vocabulary.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::model::{Diet, FoodKg, Goal, Ingredient, Recipe, Season};

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    pub recipes: usize,
    pub ingredients: usize,
    /// Ingredients per recipe (min, max).
    pub ingredients_per_recipe: (usize, usize),
    /// Zipf skew for ingredient popularity (1.0 ≈ natural long tail).
    pub zipf_exponent: f64,
    /// Fraction of ingredients with seasonal availability.
    pub seasonal_fraction: f64,
    /// Fraction of ingredients with regional availability.
    pub regional_fraction: f64,
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            recipes: 200,
            ingredients: 150,
            ingredients_per_recipe: (3, 8),
            zipf_exponent: 1.0,
            seasonal_fraction: 0.4,
            regional_fraction: 0.15,
            seed: 0xF00D,
        }
    }
}

const CATEGORIES: &[&str] = &[
    "Meat",
    "Dairy",
    "Fish",
    "Shellfish",
    "Gluten",
    "Nut",
    "Egg",
    "HighCarb",
    "RawFish",
];
const NUTRIENTS: &[&str] = &[
    "Protein",
    "Fiber",
    "Iron",
    "Calcium",
    "VitaminA",
    "VitaminC",
    "Folate",
    "Omega3",
    "Potassium",
];
const REGIONS: &[&str] = &["Florida", "NewYork", "California", "Washington", "Texas"];

/// Generates a synthetic KG.
pub fn synthetic(cfg: &SyntheticConfig) -> FoodKg {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut kg = FoodKg::new();

    // Zipf weights over ingredient ranks.
    let weights: Vec<f64> = (1..=cfg.ingredients)
        .map(|rank| 1.0 / (rank as f64).powf(cfg.zipf_exponent))
        .collect();
    let total: f64 = weights.iter().sum();

    for i in 0..cfg.ingredients {
        let mut ing = Ingredient::new(&format!("SynIngredient{i}"));
        if rng.gen_bool(cfg.seasonal_fraction) {
            let n = rng.gen_range(1..=2);
            let mut seasons = Season::ALL.to_vec();
            seasons.shuffle(&mut rng);
            ing.seasons = seasons.into_iter().take(n).collect();
            ing.seasons.sort();
        }
        if rng.gen_bool(cfg.regional_fraction) {
            ing.regions = vec![REGIONS.choose(&mut rng).unwrap().to_string()];
        }
        if rng.gen_bool(0.35) {
            ing.categories = vec![CATEGORIES.choose(&mut rng).unwrap().to_string()];
        }
        let n_nutrients = rng.gen_range(0..=3);
        let mut nutrients = NUTRIENTS.to_vec();
        nutrients.shuffle(&mut rng);
        ing.nutrients = nutrients
            .into_iter()
            .take(n_nutrients)
            .map(str::to_string)
            .collect();
        kg.add_ingredient(ing);
    }

    // Sample an ingredient index by the Zipf weights.
    let sample_ingredient = |rng: &mut StdRng| -> usize {
        let mut x = rng.gen_range(0.0..total);
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                return i;
            }
            x -= w;
        }
        cfg.ingredients - 1
    };

    for r in 0..cfg.recipes {
        let (lo, hi) = cfg.ingredients_per_recipe;
        let k = rng.gen_range(lo..=hi.max(lo));
        let mut ids: Vec<String> = Vec::with_capacity(k);
        while ids.len() < k {
            let idx = sample_ingredient(&mut rng);
            let id = format!("SynIngredient{idx}");
            if !ids.contains(&id) {
                ids.push(id);
            }
        }
        let mut recipe = Recipe::new(&format!("SynRecipe{r}"), &format!("Synthetic Recipe {r}"));
        recipe.ingredients = ids;
        recipe.calories = rng.gen_range(150..800);
        recipe.price_tier = rng.gen_range(1..=3);
        kg.add_recipe(recipe);
    }

    kg.diets = vec![
        Diet::new("Vegan", &["Meat", "Dairy", "Egg", "Fish", "Shellfish"]),
        Diet::new("Vegetarian", &["Meat", "Fish", "Shellfish"]),
        Diet::new("GlutenFree", &["Gluten"]),
        Diet::new("NutFree", &["Nut"]),
    ];
    kg.goals = vec![
        Goal::new("HighProteinGoal", "Protein"),
        Goal::new("HighFiberGoal", "Fiber"),
        Goal::new("ImmunityGoal", "VitaminC"),
    ];
    kg.regions = REGIONS.iter().map(|s| s.to_string()).collect();
    kg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = SyntheticConfig::default();
        let a = synthetic(&cfg);
        let b = synthetic(&cfg);
        assert_eq!(a.recipes, b.recipes);
        assert_eq!(a.ingredients, b.ingredients);
    }

    #[test]
    fn respects_sizes() {
        let cfg = SyntheticConfig {
            recipes: 50,
            ingredients: 40,
            ..Default::default()
        };
        let kg = synthetic(&cfg);
        assert_eq!(kg.recipes.len(), 50);
        assert_eq!(kg.ingredients.len(), 40);
        for r in &kg.recipes {
            assert!(r.ingredients.len() >= cfg.ingredients_per_recipe.0);
            assert!(r.ingredients.len() <= cfg.ingredients_per_recipe.1);
            for i in &r.ingredients {
                assert!(kg.ingredient(i).is_some());
            }
        }
    }

    #[test]
    fn ingredient_reuse_is_long_tailed() {
        let kg = synthetic(&SyntheticConfig::default());
        let mut counts = std::collections::HashMap::new();
        for r in &kg.recipes {
            for i in &r.ingredients {
                *counts.entry(i.clone()).or_insert(0usize) += 1;
            }
        }
        let mut freq: Vec<usize> = counts.values().copied().collect();
        freq.sort_unstable_by(|a, b| b.cmp(a));
        // Head ingredient should appear far more often than the median.
        let head = freq[0];
        let median = freq[freq.len() / 2];
        assert!(
            head >= median * 3,
            "expected long tail, head={head} median={median}"
        );
    }

    #[test]
    fn seasonal_fraction_roughly_respected() {
        let kg = synthetic(&SyntheticConfig {
            ingredients: 300,
            ..Default::default()
        });
        let seasonal = kg
            .ingredients
            .iter()
            .filter(|i| !i.seasons.is_empty())
            .count();
        let frac = seasonal as f64 / kg.ingredients.len() as f64;
        assert!((0.25..0.55).contains(&frac), "fraction {frac}");
    }

    #[test]
    fn different_seeds_differ() {
        let a = synthetic(&SyntheticConfig::default());
        let b = synthetic(&SyntheticConfig {
            seed: 999,
            ..Default::default()
        });
        assert_ne!(
            a.recipes[0].ingredients, b.recipes[0].ingredients,
            "seeded runs should differ"
        );
    }
}
