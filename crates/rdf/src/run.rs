//! Ordered-run cursors: sorted, seekable streams of the ids at the one
//! free position of a doubly-ground triple pattern.
//!
//! A "run" is what a hexastore permutation already stores for free: the
//! subjects of `(?v, p, o)` are the tail column of the `pos` index's
//! `[p, o, *]` prefix, and the objects of `(s, p, ?v)` are the tail of
//! the `spo` index's `[s, p, *]` prefix — ascending, duplicate-free,
//! and binary-searchable in every backend (B-tree sets in memory,
//! sorted slices in committed layers, mmap runs on disk). [`RunCursor`]
//! exposes them behind `peek` / `advance` / `seek(≥ id)` so the SPARQL
//! evaluator's leapfrog join can intersect k runs while skipping the
//! gaps, instead of scanning and hashing each one.
//!
//! Layered views (an overlay over a ledger over a base) merge their
//! per-layer runs with [`MergeRun`], which also reports which layer the
//! current value came from ([`RunCursor::source`]). That source index
//! follows the same base-then-delta order as `match_pattern`'s
//! concatenated scans, which is what lets the leapfrog operator emit
//! results in exactly the order the scan-based join paths produce.

use std::collections::BTreeSet;

use crate::intern::TermId;

/// A doubly-ground triple pattern with one free position — the shapes
/// whose match sets are materialized runs in some index permutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunSpec {
    /// Subjects `?v` of `(?v, p, o)` — the `pos` `[p, o, *]` prefix.
    Subjects { p: TermId, o: TermId },
    /// Objects `?v` of `(s, p, ?v)` — the `spo` `[s, p, *]` prefix.
    Objects { s: TermId, p: TermId },
}

/// A sorted, duplicate-free, seekable stream of term ids.
///
/// Invariant: successive `peek` values between `advance`s are strictly
/// increasing. `seek(t)` positions the cursor at the first value `>= t`
/// (a no-op when already there); seeking backward is not required to
/// work and callers never do it.
pub trait RunCursor {
    /// The value at the cursor, or `None` when exhausted.
    fn peek(&self) -> Option<TermId>;

    /// Moves to the next (strictly greater) value.
    fn advance(&mut self);

    /// Positions at the first value `>= target`.
    fn seek(&mut self, target: TermId);

    /// Which flattened store layer produced the current `peek` value:
    /// 0 for the base, increasing through deltas in the same order
    /// `match_pattern` concatenates them. Sorting accepted values by
    /// `(source, id)` therefore reproduces the concatenated scan order
    /// of a layered view. Single-layer cursors always report 0.
    fn source(&self) -> usize {
        0
    }

    /// Number of flattened layers under this cursor (1 for leaves).
    fn source_count(&self) -> usize {
        1
    }
}

/// Owned sorted-vector run: the materializing fallback for views with
/// no native cursor, and the test workhorse.
#[derive(Debug, Clone, Default)]
pub struct VecRun {
    vals: Vec<u32>,
    at: usize,
}

impl VecRun {
    /// Wraps an already ascending, duplicate-free id vector.
    pub fn from_sorted(vals: Vec<u32>) -> VecRun {
        debug_assert!(vals.windows(2).all(|w| w[0] < w[1]));
        VecRun { vals, at: 0 }
    }

    /// Sorts and dedups arbitrary ids into a run.
    pub fn from_unsorted(mut vals: Vec<u32>) -> VecRun {
        vals.sort_unstable();
        vals.dedup();
        VecRun { vals, at: 0 }
    }
}

impl RunCursor for VecRun {
    fn peek(&self) -> Option<TermId> {
        self.vals.get(self.at).map(|&v| TermId(v))
    }

    fn advance(&mut self) {
        if self.at < self.vals.len() {
            self.at += 1;
        }
    }

    fn seek(&mut self, target: TermId) {
        if self.peek().is_some_and(|v| v >= target) {
            return;
        }
        // Gallop from the current position: leapfrog seeks are usually
        // short hops, so doubling probes beat a full binary search.
        let mut step = 1usize;
        let mut lo = self.at;
        while lo + step < self.vals.len() && self.vals[lo + step] < target.0 {
            lo += step;
            step *= 2;
        }
        let hi = (lo + step + 1).min(self.vals.len());
        self.at = lo + self.vals[lo..hi].partition_point(|&v| v < target.0);
    }
}

/// Owned run carrying an explicit per-value source tag: the
/// materializing `ordered_run` fallback uses the original scan position
/// as the tag so that re-sorting accepted values by `(source, id)`
/// reproduces the view's `match_pattern` order exactly, whatever that
/// order was.
#[derive(Debug, Clone, Default)]
pub struct PairRun {
    /// `(source, id)` pairs sorted by ascending id (ids distinct).
    pairs: Vec<(usize, u32)>,
    at: usize,
}

impl PairRun {
    /// `pairs` must be sorted by ascending id with distinct ids.
    pub fn new(pairs: Vec<(usize, u32)>) -> PairRun {
        debug_assert!(pairs.windows(2).all(|w| w[0].1 < w[1].1));
        PairRun { pairs, at: 0 }
    }
}

impl RunCursor for PairRun {
    fn peek(&self) -> Option<TermId> {
        self.pairs.get(self.at).map(|&(_, v)| TermId(v))
    }

    fn advance(&mut self) {
        if self.at < self.pairs.len() {
            self.at += 1;
        }
    }

    fn seek(&mut self, target: TermId) {
        if self.peek().is_some_and(|v| v >= target) {
            return;
        }
        self.at += self.pairs[self.at..].partition_point(|&(_, v)| v < target.0);
    }

    fn source(&self) -> usize {
        self.pairs.get(self.at).map(|&(s, _)| s).unwrap_or(0)
    }

    fn source_count(&self) -> usize {
        self.pairs
            .iter()
            .map(|&(s, _)| s + 1)
            .max()
            .unwrap_or(1)
            .max(1)
    }
}

/// Borrowed run over a `[a, b, *]` prefix slice of a sorted permuted
/// index (a committed layer's `pos`/`spo` vectors): values are the
/// third column, ascending because the first two are fixed.
#[derive(Debug, Clone)]
pub struct SliceRun<'a> {
    rows: &'a [[u32; 3]],
    at: usize,
}

impl<'a> SliceRun<'a> {
    /// `rows` must share one `[a, b]` prefix and be sorted (any `scan2`
    /// style prefix sub-slice qualifies).
    pub fn new(rows: &'a [[u32; 3]]) -> SliceRun<'a> {
        debug_assert!(rows.windows(2).all(|w| w[0][2] < w[1][2]));
        SliceRun { rows, at: 0 }
    }
}

impl RunCursor for SliceRun<'_> {
    fn peek(&self) -> Option<TermId> {
        self.rows.get(self.at).map(|r| TermId(r[2]))
    }

    fn advance(&mut self) {
        if self.at < self.rows.len() {
            self.at += 1;
        }
    }

    fn seek(&mut self, target: TermId) {
        if self.peek().is_some_and(|v| v >= target) {
            return;
        }
        let mut step = 1usize;
        let mut lo = self.at;
        while lo + step < self.rows.len() && self.rows[lo + step][2] < target.0 {
            lo += step;
            step *= 2;
        }
        let hi = (lo + step + 1).min(self.rows.len());
        self.at = lo + self.rows[lo..hi].partition_point(|r| r[2] < target.0);
    }
}

/// Run over a `[a, b, *]` prefix of a B-tree permuted index (the live
/// in-memory `Graph` / overlay-delta indexes). Seeks re-enter the tree
/// with a range query — O(log n) with no per-cursor materialization.
#[derive(Debug, Clone)]
pub struct BTreeRun<'a> {
    set: &'a BTreeSet<[u32; 3]>,
    a: u32,
    b: u32,
    cur: Option<u32>,
}

impl<'a> BTreeRun<'a> {
    pub fn new(set: &'a BTreeSet<[u32; 3]>, a: u32, b: u32) -> BTreeRun<'a> {
        let cur = set.range([a, b, 0]..=[a, b, u32::MAX]).next().map(|t| t[2]);
        BTreeRun { set, a, b, cur }
    }

    fn from(&self, lo: u32) -> Option<u32> {
        self.set
            .range([self.a, self.b, lo]..=[self.a, self.b, u32::MAX])
            .next()
            .map(|t| t[2])
    }
}

impl RunCursor for BTreeRun<'_> {
    fn peek(&self) -> Option<TermId> {
        self.cur.map(TermId)
    }

    fn advance(&mut self) {
        self.cur = match self.cur {
            Some(v) if v < u32::MAX => self.from(v + 1),
            _ => None,
        };
    }

    fn seek(&mut self, target: TermId) {
        match self.cur {
            Some(v) if v >= target.0 => {}
            Some(_) => self.cur = self.from(target.0),
            None => {}
        }
    }
}

/// K-way merge of per-layer runs with duplicate collapsing — the
/// cursor of a stacked view (overlay over base, ledger stack).
///
/// Well-formed stacks never hold the same triple in two layers
/// (overlay inserts check the base first; committed layers inherit
/// that), so collapsing is defensive. `source` reports the flattened
/// layer index of the part holding the current minimum; nested merges
/// flatten (a part that is itself a merge occupies a contiguous block
/// of source indices), matching nested `match_pattern` concatenation.
pub struct MergeRun<'a> {
    parts: Vec<Box<dyn RunCursor + 'a>>,
    /// Flattened source-index offset of each part.
    offsets: Vec<usize>,
    total_sources: usize,
}

impl<'a> MergeRun<'a> {
    pub fn new(parts: Vec<Box<dyn RunCursor + 'a>>) -> MergeRun<'a> {
        let mut offsets = Vec::with_capacity(parts.len());
        let mut total = 0usize;
        for p in &parts {
            offsets.push(total);
            total += p.source_count();
        }
        MergeRun {
            parts,
            offsets,
            total_sources: total,
        }
    }

    /// Index of the part holding the minimum, if any part is live. The
    /// earliest part wins ties so `source` stays deterministic.
    fn min_part(&self) -> Option<usize> {
        let mut best: Option<(TermId, usize)> = None;
        for (i, p) in self.parts.iter().enumerate() {
            if let Some(v) = p.peek() {
                if best.is_none_or(|(bv, _)| v < bv) {
                    best = Some((v, i));
                }
            }
        }
        best.map(|(_, i)| i)
    }
}

impl RunCursor for MergeRun<'_> {
    fn peek(&self) -> Option<TermId> {
        self.parts.iter().filter_map(|p| p.peek()).min()
    }

    fn advance(&mut self) {
        let Some(cur) = self.peek() else { return };
        // Advance every part sitting on the minimum: duplicates across
        // layers collapse to one value.
        for p in &mut self.parts {
            if p.peek() == Some(cur) {
                p.advance();
            }
        }
    }

    fn seek(&mut self, target: TermId) {
        for p in &mut self.parts {
            p.seek(target);
        }
    }

    fn source(&self) -> usize {
        match self.min_part() {
            Some(i) => self.offsets[i] + self.parts[i].source(),
            None => 0,
        }
    }

    fn source_count(&self) -> usize {
        self.total_sources
    }
}

/// Drains a cursor into `(source, id)` pairs — test/debug helper.
pub fn drain_run(mut c: Box<dyn RunCursor + '_>) -> Vec<(usize, u32)> {
    let mut out = Vec::new();
    while let Some(v) = c.peek() {
        out.push((c.source(), v.0));
        c.advance();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vals(c: &mut dyn RunCursor) -> Vec<u32> {
        let mut out = Vec::new();
        while let Some(v) = c.peek() {
            out.push(v.0);
            c.advance();
        }
        out
    }

    #[test]
    fn vec_run_seek_lands_on_first_geq() {
        let mut r = VecRun::from_sorted(vec![2, 5, 9, 40, 41, 100]);
        r.seek(TermId(6));
        assert_eq!(r.peek(), Some(TermId(9)));
        r.seek(TermId(9));
        assert_eq!(r.peek(), Some(TermId(9)), "seek to current is a no-op");
        r.seek(TermId(42));
        assert_eq!(r.peek(), Some(TermId(100)));
        r.seek(TermId(101));
        assert_eq!(r.peek(), None);
    }

    #[test]
    fn vec_run_from_unsorted_dedups() {
        let mut r = VecRun::from_unsorted(vec![7, 3, 7, 1]);
        assert_eq!(vals(&mut r), vec![1, 3, 7]);
    }

    #[test]
    fn slice_run_reads_third_column() {
        let rows = [[4, 9, 2], [4, 9, 5], [4, 9, 11]];
        let mut r = SliceRun::new(&rows);
        r.seek(TermId(3));
        assert_eq!(r.peek(), Some(TermId(5)));
        assert_eq!(vals(&mut r), vec![5, 11]);
    }

    #[test]
    fn btree_run_scopes_to_prefix() {
        let mut set = BTreeSet::new();
        set.insert([1, 2, 10]);
        set.insert([1, 2, 20]);
        set.insert([1, 3, 15]); // different prefix, invisible
        set.insert([1, 2, 30]);
        let mut r = BTreeRun::new(&set, 1, 2);
        assert_eq!(r.peek(), Some(TermId(10)));
        r.seek(TermId(11));
        assert_eq!(vals(&mut r), vec![20, 30]);
    }

    #[test]
    fn merge_run_interleaves_and_tags_sources() {
        let a = VecRun::from_sorted(vec![1, 5, 9]);
        let b = VecRun::from_sorted(vec![2, 5, 10]);
        let m = MergeRun::new(vec![Box::new(a), Box::new(b)]);
        assert_eq!(m.source_count(), 2);
        let drained = drain_run(Box::new(m));
        // 5 appears in both layers: collapsed once, attributed to the
        // earliest layer.
        assert_eq!(drained, vec![(0, 1), (1, 2), (0, 5), (0, 9), (1, 10)]);
    }

    #[test]
    fn nested_merge_flattens_source_indexes() {
        let inner = MergeRun::new(vec![
            Box::new(VecRun::from_sorted(vec![1])) as Box<dyn RunCursor>,
            Box::new(VecRun::from_sorted(vec![4])),
        ]);
        let outer = MergeRun::new(vec![
            Box::new(inner) as Box<dyn RunCursor>,
            Box::new(VecRun::from_sorted(vec![2])),
        ]);
        assert_eq!(outer.source_count(), 3);
        assert_eq!(drain_run(Box::new(outer)), vec![(0, 1), (2, 2), (1, 4)]);
    }

    #[test]
    fn merge_run_seek_moves_all_parts() {
        let a = VecRun::from_sorted(vec![1, 50]);
        let b = VecRun::from_sorted(vec![2, 60]);
        let mut m = MergeRun::new(vec![Box::new(a) as Box<dyn RunCursor>, Box::new(b)]);
        m.seek(TermId(10));
        assert_eq!(m.peek(), Some(TermId(50)));
        assert_eq!(m.source(), 0);
    }
}
