//! Well-known vocabulary IRIs (RDF, RDFS, OWL, XSD) plus the namespaces of
//! the ontologies this workspace reproduces (EO, FEO, food).
//!
//! Keeping these as `&'static str` constants (rather than `Iri` values)
//! avoids allocation at every use site; callers wrap them with
//! [`crate::term::Iri::new`] or intern them directly.

/// Helper for building namespaced IRIs at runtime.
#[derive(Debug, Clone)]
pub struct Namespace {
    prefix: String,
}

impl Namespace {
    pub fn new(prefix: impl Into<String>) -> Self {
        Namespace {
            prefix: prefix.into(),
        }
    }

    /// The namespace IRI itself.
    pub fn as_str(&self) -> &str {
        &self.prefix
    }

    /// `ns.get("Local")` → `"<prefix>Local"`.
    pub fn get(&self, local: &str) -> String {
        format!("{}{}", self.prefix, local)
    }
}

/// The `rdf:` vocabulary.
pub mod rdf {
    pub const NS: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#";
    pub const TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
    pub const PROPERTY: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#Property";
    pub const FIRST: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#first";
    pub const REST: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#rest";
    pub const NIL: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#nil";
    pub const LANG_STRING: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#langString";
}

/// The `rdfs:` vocabulary.
pub mod rdfs {
    pub const NS: &str = "http://www.w3.org/2000/01/rdf-schema#";
    pub const SUB_CLASS_OF: &str = "http://www.w3.org/2000/01/rdf-schema#subClassOf";
    pub const SUB_PROPERTY_OF: &str = "http://www.w3.org/2000/01/rdf-schema#subPropertyOf";
    pub const DOMAIN: &str = "http://www.w3.org/2000/01/rdf-schema#domain";
    pub const RANGE: &str = "http://www.w3.org/2000/01/rdf-schema#range";
    pub const LABEL: &str = "http://www.w3.org/2000/01/rdf-schema#label";
    pub const COMMENT: &str = "http://www.w3.org/2000/01/rdf-schema#comment";
    pub const CLASS: &str = "http://www.w3.org/2000/01/rdf-schema#Class";
    pub const RESOURCE: &str = "http://www.w3.org/2000/01/rdf-schema#Resource";
    pub const LITERAL: &str = "http://www.w3.org/2000/01/rdf-schema#Literal";
    pub const SEE_ALSO: &str = "http://www.w3.org/2000/01/rdf-schema#seeAlso";
    pub const IS_DEFINED_BY: &str = "http://www.w3.org/2000/01/rdf-schema#isDefinedBy";
}

/// The `owl:` vocabulary (the OWL 2 fragment the reasoner understands).
pub mod owl {
    pub const NS: &str = "http://www.w3.org/2002/07/owl#";
    pub const CLASS: &str = "http://www.w3.org/2002/07/owl#Class";
    pub const THING: &str = "http://www.w3.org/2002/07/owl#Thing";
    pub const NOTHING: &str = "http://www.w3.org/2002/07/owl#Nothing";
    pub const ONTOLOGY: &str = "http://www.w3.org/2002/07/owl#Ontology";
    pub const IMPORTS: &str = "http://www.w3.org/2002/07/owl#imports";
    pub const OBJECT_PROPERTY: &str = "http://www.w3.org/2002/07/owl#ObjectProperty";
    pub const DATATYPE_PROPERTY: &str = "http://www.w3.org/2002/07/owl#DatatypeProperty";
    pub const ANNOTATION_PROPERTY: &str = "http://www.w3.org/2002/07/owl#AnnotationProperty";
    pub const NAMED_INDIVIDUAL: &str = "http://www.w3.org/2002/07/owl#NamedIndividual";
    pub const EQUIVALENT_CLASS: &str = "http://www.w3.org/2002/07/owl#equivalentClass";
    pub const EQUIVALENT_PROPERTY: &str = "http://www.w3.org/2002/07/owl#equivalentProperty";
    pub const DISJOINT_WITH: &str = "http://www.w3.org/2002/07/owl#disjointWith";
    pub const INVERSE_OF: &str = "http://www.w3.org/2002/07/owl#inverseOf";
    pub const TRANSITIVE_PROPERTY: &str = "http://www.w3.org/2002/07/owl#TransitiveProperty";
    pub const SYMMETRIC_PROPERTY: &str = "http://www.w3.org/2002/07/owl#SymmetricProperty";
    pub const ASYMMETRIC_PROPERTY: &str = "http://www.w3.org/2002/07/owl#AsymmetricProperty";
    pub const FUNCTIONAL_PROPERTY: &str = "http://www.w3.org/2002/07/owl#FunctionalProperty";
    pub const INVERSE_FUNCTIONAL_PROPERTY: &str =
        "http://www.w3.org/2002/07/owl#InverseFunctionalProperty";
    pub const IRREFLEXIVE_PROPERTY: &str = "http://www.w3.org/2002/07/owl#IrreflexiveProperty";
    pub const REFLEXIVE_PROPERTY: &str = "http://www.w3.org/2002/07/owl#ReflexiveProperty";
    pub const SAME_AS: &str = "http://www.w3.org/2002/07/owl#sameAs";
    pub const DIFFERENT_FROM: &str = "http://www.w3.org/2002/07/owl#differentFrom";
    pub const RESTRICTION: &str = "http://www.w3.org/2002/07/owl#Restriction";
    pub const ON_PROPERTY: &str = "http://www.w3.org/2002/07/owl#onProperty";
    pub const SOME_VALUES_FROM: &str = "http://www.w3.org/2002/07/owl#someValuesFrom";
    pub const ALL_VALUES_FROM: &str = "http://www.w3.org/2002/07/owl#allValuesFrom";
    pub const HAS_VALUE: &str = "http://www.w3.org/2002/07/owl#hasValue";
    pub const INTERSECTION_OF: &str = "http://www.w3.org/2002/07/owl#intersectionOf";
    pub const UNION_OF: &str = "http://www.w3.org/2002/07/owl#unionOf";
    pub const COMPLEMENT_OF: &str = "http://www.w3.org/2002/07/owl#complementOf";
    pub const ONE_OF: &str = "http://www.w3.org/2002/07/owl#oneOf";
    pub const PROPERTY_CHAIN_AXIOM: &str = "http://www.w3.org/2002/07/owl#propertyChainAxiom";
    pub const PROPERTY_DISJOINT_WITH: &str = "http://www.w3.org/2002/07/owl#propertyDisjointWith";
    pub const ALL_DIFFERENT: &str = "http://www.w3.org/2002/07/owl#AllDifferent";
    pub const MEMBERS: &str = "http://www.w3.org/2002/07/owl#members";
    pub const DISTINCT_MEMBERS: &str = "http://www.w3.org/2002/07/owl#distinctMembers";
}

/// The `xsd:` datatypes.
pub mod xsd {
    pub const NS: &str = "http://www.w3.org/2001/XMLSchema#";
    pub const STRING: &str = "http://www.w3.org/2001/XMLSchema#string";
    pub const BOOLEAN: &str = "http://www.w3.org/2001/XMLSchema#boolean";
    pub const INTEGER: &str = "http://www.w3.org/2001/XMLSchema#integer";
    pub const INT: &str = "http://www.w3.org/2001/XMLSchema#int";
    pub const LONG: &str = "http://www.w3.org/2001/XMLSchema#long";
    pub const SHORT: &str = "http://www.w3.org/2001/XMLSchema#short";
    pub const BYTE: &str = "http://www.w3.org/2001/XMLSchema#byte";
    pub const NON_NEGATIVE_INTEGER: &str = "http://www.w3.org/2001/XMLSchema#nonNegativeInteger";
    pub const POSITIVE_INTEGER: &str = "http://www.w3.org/2001/XMLSchema#positiveInteger";
    pub const DECIMAL: &str = "http://www.w3.org/2001/XMLSchema#decimal";
    pub const FLOAT: &str = "http://www.w3.org/2001/XMLSchema#float";
    pub const DOUBLE: &str = "http://www.w3.org/2001/XMLSchema#double";
    pub const DATE: &str = "http://www.w3.org/2001/XMLSchema#date";
    pub const DATE_TIME: &str = "http://www.w3.org/2001/XMLSchema#dateTime";

    /// True for the XSD integer family.
    pub fn is_integer_type(iri: &str) -> bool {
        matches!(
            iri,
            INTEGER | INT | LONG | SHORT | BYTE | NON_NEGATIVE_INTEGER | POSITIVE_INTEGER
        )
    }

    /// True for any XSD numeric type.
    pub fn is_numeric_type(iri: &str) -> bool {
        is_integer_type(iri) || matches!(iri, DECIMAL | FLOAT | DOUBLE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn namespace_builds_iris() {
        let ns = Namespace::new("http://example.org/feo#");
        assert_eq!(ns.get("Autumn"), "http://example.org/feo#Autumn");
        assert_eq!(ns.as_str(), "http://example.org/feo#");
    }

    #[test]
    fn xsd_type_families() {
        assert!(xsd::is_integer_type(xsd::INT));
        assert!(xsd::is_numeric_type(xsd::DOUBLE));
        assert!(!xsd::is_numeric_type(xsd::STRING));
        assert!(!xsd::is_integer_type(xsd::DECIMAL));
        assert!(xsd::is_numeric_type(xsd::DECIMAL));
    }
}
