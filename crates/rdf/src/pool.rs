//! A scoped worker pool for deterministic data parallelism.
//!
//! The workspace's hot paths — semi-naïve reasoner rounds, BGP join
//! probes, batched explanation serving — are all shaped the same way: a
//! slice of independent work items is mapped over a read-only shared
//! structure, and the per-item outputs are concatenated. [`map_chunks`]
//! runs that shape across `std::thread::scope` workers while keeping the
//! output **byte-identical to the sequential run**: the input slice is
//! split into contiguous chunks, each worker processes its chunk in
//! order, and the per-chunk outputs are stitched back together in chunk
//! order. Because every item is processed independently against the same
//! immutable view, concatenating chunk outputs in pinned order
//! reproduces exactly the sequence a single thread would have produced.
//!
//! The [`Parallelism`] knob travels on the per-layer options structs
//! (`MaterializeOptions`, `QueryOptions`, `ExplainOptions`). `Auto`
//! honours the `FEO_THREADS` environment variable so deployments (and
//! CI) can pin the worker count without touching call sites.

use std::num::NonZeroUsize;

/// Upper bound on workers; protects against absurd `FEO_THREADS` values.
const MAX_WORKERS: usize = 64;

/// How many worker threads a parallel-capable execution may use.
///
/// * `Off` — strictly sequential; parallel code paths are bypassed
///   entirely (the ≤ 5% overhead contract is really ~0%).
/// * `Fixed(n)` — exactly `n` workers regardless of environment.
/// * `Auto` — the `FEO_THREADS` environment variable when set, otherwise
///   the machine's available parallelism.
///
/// Whatever the setting, results are identical: parallel execution in
/// this workspace is a throughput knob, never a semantics knob.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Parallelism {
    /// Sequential execution on the calling thread.
    Off,
    /// Exactly this many workers (values are clamped to `1..=64`).
    Fixed(usize),
    /// `FEO_THREADS` when set, otherwise `std::thread::available_parallelism`.
    #[default]
    Auto,
}

impl Parallelism {
    /// Resolves the knob to a concrete worker count (≥ 1).
    pub fn workers(self) -> usize {
        match self {
            Parallelism::Off => 1,
            Parallelism::Fixed(n) => n.clamp(1, MAX_WORKERS),
            Parallelism::Auto => match env_threads() {
                Some(n) => n.clamp(1, MAX_WORKERS),
                None => std::thread::available_parallelism()
                    .map(NonZeroUsize::get)
                    .unwrap_or(1)
                    .min(MAX_WORKERS),
            },
        }
    }

    /// True when the resolved worker count allows actual fan-out.
    pub fn is_parallel(self) -> bool {
        self.workers() > 1
    }
}

/// Reads `FEO_THREADS`; `None` when unset, empty, or unparseable (a
/// malformed value must degrade to the machine default, not panic).
fn env_threads() -> Option<usize> {
    let raw = std::env::var("FEO_THREADS").ok()?;
    let n: usize = raw.trim().parse().ok()?;
    if n == 0 {
        None
    } else {
        Some(n)
    }
}

/// Maps `f` over contiguous chunks of `items` on up to `workers`
/// threads and returns the per-chunk outputs **in chunk order**.
///
/// `f` receives `(chunk_start_index, chunk_slice)` so callers can
/// recover global item positions. The work is only fanned out when it
/// is worth a thread: with `workers <= 1`, fewer than two items per
/// prospective worker, or fewer than `min_items` items in total, `f`
/// runs once inline on the calling thread — the sequential fast path
/// that keeps `Parallelism::Off` overhead at zero.
///
/// Chunk boundaries never influence the *content* of the result:
/// callers must make `f` item-local (each item processed independently
/// against shared read-only state), and then
/// `concat(map_chunks(...)) == f(0, items)` for every worker count.
///
/// If the OS refuses to spawn a thread the remaining chunks simply run
/// on the calling thread — degraded throughput, never an error. A
/// panicking worker propagates its panic to the caller after the scope
/// joins (workers in this workspace return typed errors instead of
/// panicking, so this is a backstop, not a channel).
pub fn map_chunks<I, T, F>(workers: usize, min_items: usize, items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &[I]) -> T + Sync,
{
    let n = items.len();
    if workers <= 1 || n < min_items.max(2) || n < workers {
        if n == 0 {
            return Vec::new();
        }
        return vec![f(0, items)];
    }
    let workers = workers.min(n).min(MAX_WORKERS);
    let chunk = n.div_ceil(workers);
    let bounds: Vec<(usize, usize)> = (0..workers)
        .map(|w| (w * chunk, ((w + 1) * chunk).min(n)))
        .filter(|(lo, hi)| lo < hi)
        .collect();

    let mut out: Vec<Option<T>> = Vec::with_capacity(bounds.len());
    for _ in 0..bounds.len() {
        out.push(None);
    }
    std::thread::scope(|scope| {
        let fref = &f;
        let mut pending: Vec<(usize, std::thread::ScopedJoinHandle<'_, T>)> = Vec::new();
        // Chunk 0 runs on the calling thread; the rest fan out. A failed
        // spawn falls back to inline execution of that chunk.
        let mut inline: Vec<usize> = vec![0];
        for (idx, &(lo, hi)) in bounds.iter().enumerate().skip(1) {
            let spawned = std::thread::Builder::new()
                .name(format!("feo-pool-{idx}"))
                .spawn_scoped(scope, move || fref(lo, &items[lo..hi]));
            match spawned {
                Ok(handle) => pending.push((idx, handle)),
                Err(_) => inline.push(idx),
            }
        }
        for idx in inline {
            let (lo, hi) = bounds[idx];
            out[idx] = Some(f(lo, &items[lo..hi]));
        }
        for (idx, handle) in pending {
            match handle.join() {
                Ok(v) => out[idx] = Some(v),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    out.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_resolves_to_one_worker() {
        assert_eq!(Parallelism::Off.workers(), 1);
        assert!(!Parallelism::Off.is_parallel());
    }

    #[test]
    fn fixed_is_clamped() {
        assert_eq!(Parallelism::Fixed(0).workers(), 1);
        assert_eq!(Parallelism::Fixed(4).workers(), 4);
        assert_eq!(Parallelism::Fixed(10_000).workers(), MAX_WORKERS);
    }

    #[test]
    fn auto_resolves_to_at_least_one() {
        assert!(Parallelism::Auto.workers() >= 1);
    }

    #[test]
    fn map_chunks_preserves_sequential_order() {
        let items: Vec<u64> = (0..1000).collect();
        let sequential: Vec<u64> = items.iter().map(|x| x * 3).collect();
        for workers in [1, 2, 3, 4, 7, 8] {
            let chunks = map_chunks(workers, 1, &items, |_, chunk| {
                chunk.iter().map(|x| x * 3).collect::<Vec<u64>>()
            });
            let merged: Vec<u64> = chunks.into_iter().flatten().collect();
            assert_eq!(merged, sequential, "workers={workers}");
        }
    }

    #[test]
    fn map_chunks_reports_global_offsets() {
        let items: Vec<u32> = (0..100).collect();
        let chunks = map_chunks(4, 1, &items, |start, chunk| {
            chunk
                .iter()
                .enumerate()
                .map(|(i, &v)| (start + i, v))
                .collect::<Vec<_>>()
        });
        for (pos, v) in chunks.into_iter().flatten() {
            assert_eq!(pos as u32, v);
        }
    }

    #[test]
    fn small_inputs_stay_inline() {
        let items = [1u8];
        let chunks = map_chunks(8, 64, &items, |start, chunk| (start, chunk.len()));
        assert_eq!(chunks, vec![(0, 1)]);
        let none: Vec<(usize, usize)> = map_chunks(8, 64, &[] as &[u8], |s, c| (s, c.len()));
        assert!(none.is_empty());
    }

    #[test]
    fn guard_is_shareable_across_workers() {
        use crate::governor::Budget;
        let guard = Budget::new().with_max_solutions(10_000_000).start();
        let items: Vec<u32> = (0..4096).collect();
        let chunks = map_chunks(4, 1, &items, |_, chunk| {
            for _ in chunk {
                guard.add_solutions(1).map_err(|e| e.resource).ok();
            }
            chunk.len()
        });
        let total: usize = chunks.into_iter().sum();
        assert_eq!(total, 4096);
        assert_eq!(guard.solutions_spent(), 4096);
    }
}
