//! N-Triples reader and writer.
//!
//! N-Triples is a line-oriented subset of Turtle, so the reader delegates
//! to the Turtle parser line by line (rejecting Turtle-only constructs),
//! which keeps one grammar implementation authoritative. The writer emits
//! canonical, fully-expanded triples — the interchange format used to dump
//! materialized (inferred) graphs.

use crate::graph::Graph;
use crate::term::Triple;
use crate::turtle::{parse_turtle, TurtleError};

/// Parses an N-Triples document.
pub fn parse_ntriples(input: &str) -> Result<Vec<Triple>, TurtleError> {
    let mut triples = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if trimmed.contains('@') && trimmed.starts_with('@') {
            return Err(TurtleError {
                message: "directives are not allowed in N-Triples".into(),
                line: lineno + 1,
                column: 1,
            });
        }
        let mut parsed = parse_turtle(trimmed).map_err(|mut e| {
            e.line = lineno + 1;
            e
        })?;
        if parsed.len() != 1 {
            return Err(TurtleError {
                message: format!(
                    "N-Triples line must contain exactly one triple, found {}",
                    parsed.len()
                ),
                line: lineno + 1,
                column: 1,
            });
        }
        triples.push(parsed.pop().expect("length checked"));
    }
    Ok(triples)
}

/// Parses N-Triples directly into a graph, returning the number of triples
/// newly added.
pub fn parse_ntriples_into(input: &str, graph: &mut Graph) -> Result<usize, TurtleError> {
    let triples = parse_ntriples(input)?;
    let mut added = 0;
    for t in &triples {
        if graph.insert(t) {
            added += 1;
        }
    }
    Ok(added)
}

/// Serializes a graph as N-Triples in deterministic (sorted) order.
pub fn write_ntriples(graph: &Graph) -> String {
    let mut lines: Vec<String> = graph.iter_triples().map(|t| t.to_string()).collect();
    lines.sort();
    let mut out = lines.join("\n");
    if !out.is_empty() {
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    #[test]
    fn parse_basic_document() {
        let ts = parse_ntriples(
            "# comment\n\
             <http://e/a> <http://e/p> <http://e/b> .\n\
             \n\
             <http://e/a> <http://e/q> \"lit\"@en .\n",
        )
        .unwrap();
        assert_eq!(ts.len(), 2);
    }

    #[test]
    fn rejects_directives() {
        assert!(parse_ntriples("@prefix e: <http://e/> .").is_err());
    }

    #[test]
    fn rejects_multi_triple_lines() {
        let err =
            parse_ntriples("<http://e/a> <http://e/p> <http://e/b> , <http://e/c> .").unwrap_err();
        assert!(err.message.contains("exactly one"));
    }

    #[test]
    fn error_carries_line_number() {
        let err = parse_ntriples(
            "<http://e/a> <http://e/p> <http://e/b> .\n\
             <http://e/a> <http://e/p> \"broken .\n",
        )
        .unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn round_trip() {
        let mut g = Graph::new();
        g.insert_iris("http://e/a", "http://e/p", "http://e/b");
        g.insert_terms(
            Term::iri("http://e/a"),
            Term::iri("http://e/q"),
            Term::simple("a \"quote\" and\nnewline"),
        );
        let nt = write_ntriples(&g);
        let mut g2 = Graph::new();
        parse_ntriples_into(&nt, &mut g2).unwrap();
        assert_eq!(g.len(), g2.len());
        for t in g.iter_triples() {
            assert!(g2.contains(&t));
        }
    }

    #[test]
    fn writer_is_sorted_and_newline_terminated() {
        let mut g = Graph::new();
        g.insert_iris("http://e/z", "http://e/p", "http://e/b");
        g.insert_iris("http://e/a", "http://e/p", "http://e/b");
        let nt = write_ntriples(&g);
        let lines: Vec<_> = nt.lines().collect();
        assert!(lines[0].starts_with("<http://e/a>"));
        assert!(nt.ends_with('\n'));
    }
}
