//! N-Triples reader and writer.
//!
//! N-Triples is a line-oriented subset of Turtle, so the reader delegates
//! to the Turtle parser line by line (rejecting Turtle-only constructs),
//! which keeps one grammar implementation authoritative. The writer emits
//! canonical, fully-expanded triples — the interchange format used to dump
//! materialized (inferred) graphs.

use crate::governor::Guard;
use crate::graph::Graph;
use crate::term::Triple;
use crate::turtle::{parse_turtle_raw, TurtleError};
use crate::{ParseOptions, RdfError};

/// Parses an N-Triples document.
///
/// With `opts.guard` set, the input-size cap is checked up front and
/// the deadline / cancellation flag once per line. A tripped budget
/// surfaces as [`RdfError::Exhausted`]; syntax errors keep their line
/// number via [`RdfError::Syntax`].
pub fn parse_ntriples(input: &str, opts: &ParseOptions) -> Result<Vec<Triple>, RdfError> {
    if let Some(guard) = opts.guard {
        guard.check_input(input.len())?;
    }
    let mut triples = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        if let Some(guard) = opts.guard {
            guard.check_time()?;
        }
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        triples.push(parse_line(trimmed, lineno)?);
    }
    Ok(triples)
}

/// Parses an N-Triples document under an execution [`Guard`].
#[deprecated(note = "use parse_ntriples(input, &ParseOptions { guard: Some(guard) })")]
pub fn parse_ntriples_guarded(input: &str, guard: &Guard) -> Result<Vec<Triple>, RdfError> {
    parse_ntriples(input, &ParseOptions { guard: Some(guard) })
}

/// Parses one non-blank N-Triples line into exactly one triple.
fn parse_line(trimmed: &str, lineno: usize) -> Result<Triple, TurtleError> {
    if trimmed.starts_with('@') {
        return Err(TurtleError {
            message: "directives are not allowed in N-Triples".into(),
            line: lineno + 1,
            column: 1,
        });
    }
    let parsed = parse_turtle_raw(trimmed).map_err(|mut e| {
        e.line = lineno + 1;
        e
    })?;
    let count = parsed.len();
    let mut it = parsed.into_iter();
    match (it.next(), it.next()) {
        (Some(t), None) => Ok(t),
        _ => Err(TurtleError {
            message: format!("N-Triples line must contain exactly one triple, found {count}"),
            line: lineno + 1,
            column: 1,
        }),
    }
}

/// Parses N-Triples directly into a graph, returning the number of triples
/// newly added.
pub fn parse_ntriples_into(
    input: &str,
    graph: &mut Graph,
    opts: &ParseOptions,
) -> Result<usize, RdfError> {
    let triples = parse_ntriples(input, opts)?;
    let mut added = 0;
    for t in &triples {
        if graph.insert(t) {
            added += 1;
        }
    }
    Ok(added)
}

/// Serializes any graph view as N-Triples in deterministic (sorted)
/// order.
pub fn write_ntriples<G: crate::GraphView + ?Sized>(graph: &G) -> String {
    let mut lines: Vec<String> = graph.iter_triples().map(|t| t.to_string()).collect();
    lines.sort();
    let mut out = lines.join("\n");
    if !out.is_empty() {
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    fn syntax(err: RdfError) -> TurtleError {
        match err {
            RdfError::Syntax(e) => e,
            other => panic!("expected syntax error, got {other:?}"),
        }
    }

    #[test]
    fn parse_basic_document() {
        let ts = parse_ntriples(
            "# comment\n\
             <http://e/a> <http://e/p> <http://e/b> .\n\
             \n\
             <http://e/a> <http://e/q> \"lit\"@en .\n",
            &ParseOptions::default(),
        )
        .unwrap();
        assert_eq!(ts.len(), 2);
    }

    #[test]
    fn rejects_directives() {
        assert!(parse_ntriples("@prefix e: <http://e/> .", &ParseOptions::default()).is_err());
    }

    #[test]
    fn rejects_multi_triple_lines() {
        let err = parse_ntriples(
            "<http://e/a> <http://e/p> <http://e/b> , <http://e/c> .",
            &ParseOptions::default(),
        )
        .unwrap_err();
        assert!(syntax(err).message.contains("exactly one"));
    }

    #[test]
    fn error_carries_line_number() {
        let err = parse_ntriples(
            "<http://e/a> <http://e/p> <http://e/b> .\n\
             <http://e/a> <http://e/p> \"broken .\n",
            &ParseOptions::default(),
        )
        .unwrap_err();
        assert_eq!(syntax(err).line, 2);
    }

    #[test]
    fn round_trip() {
        let mut g = Graph::new();
        g.insert_iris("http://e/a", "http://e/p", "http://e/b");
        g.insert_terms(
            Term::iri("http://e/a"),
            Term::iri("http://e/q"),
            Term::simple("a \"quote\" and\nnewline"),
        );
        let nt = write_ntriples(&g);
        let mut g2 = Graph::new();
        parse_ntriples_into(&nt, &mut g2, &ParseOptions::default()).unwrap();
        assert_eq!(g.len(), g2.len());
        for t in g.iter_triples() {
            assert!(g2.contains(&t));
        }
    }

    #[test]
    fn guarded_parse_respects_input_cap() {
        use crate::governor::{Budget, Resource};
        let guard = Budget::new().with_max_input_bytes(8).start();
        let opts = ParseOptions {
            guard: Some(&guard),
        };
        let err = parse_ntriples("<http://e/a> <http://e/p> <http://e/b> .", &opts).unwrap_err();
        match err {
            RdfError::Exhausted(e) => assert_eq!(e.resource, Resource::InputSize),
            other => panic!("expected Exhausted, got {other:?}"),
        }
    }

    #[test]
    fn guarded_parse_passes_unlimited() {
        let guard = Guard::default();
        let opts = ParseOptions {
            guard: Some(&guard),
        };
        let ts = parse_ntriples("<http://e/a> <http://e/p> <http://e/b> .\n", &opts).unwrap();
        assert_eq!(ts.len(), 1);
    }

    #[test]
    fn guarded_parse_keeps_syntax_errors_typed() {
        let guard = Guard::default();
        let opts = ParseOptions {
            guard: Some(&guard),
        };
        let err = parse_ntriples("not ntriples at all", &opts).unwrap_err();
        match err {
            RdfError::Syntax(e) => assert_eq!(e.line, 1),
            other => panic!("expected Syntax, got {other:?}"),
        }
    }

    #[test]
    fn writer_is_sorted_and_newline_terminated() {
        let mut g = Graph::new();
        g.insert_iris("http://e/z", "http://e/p", "http://e/b");
        g.insert_iris("http://e/a", "http://e/p", "http://e/b");
        let nt = write_ntriples(&g);
        let lines: Vec<_> = nt.lines().collect();
        assert!(lines[0].starts_with("<http://e/a>"));
        assert!(nt.ends_with('\n'));
    }
}
