//! The write-once, dictionary-encoded segment file.
//!
//! One segment persists one closed graph (the ledger's epoch-0 base):
//! the full term dictionary in dense id order, the three sorted triple
//! permutations `Graph` keeps in memory, the maintained [`GraphStats`],
//! and a small metadata section. Layout (all integers little-endian):
//!
//! ```text
//! offset 0   magic  b"FEOSEG\0"                     (7 bytes)
//!        7   format version                         (1 byte, = 1)
//!        8   checksum: FNV-1a over bytes[16..]      (u64)
//!       16   term_count                             (u64)
//!       24   triple_count                           (u64)
//!       32   stats section length                   (u64)
//!       40   meta section length                    (u64)
//!       48   dict offset table  (term_count+1)×u64  (relative to blob)
//!        …   dict blob          concatenated codec-encoded terms
//!        …   sorted permutation term_count×u32      (ids by entry bytes)
//!        …   SPO run            triple_count×[u32;3]
//!        …   POS run            triple_count×[u32;3]
//!        …   OSP run            triple_count×[u32;3]
//!        …   stats section
//!        …   meta section
//! ```
//!
//! The dictionary keeps the graph's dense interner ids verbatim, so a
//! reopened segment answers with *exactly* the ids the original graph
//! used — WAL layers and derivation records stay valid without any
//! remapping. Reads are zero-copy over the mapped bytes: pattern scans
//! binary-search the runs in place and terms decode lazily into a
//! per-id cache on first access.
//!
//! Every structural invariant (section bounds, offset monotonicity, run
//! sort order, id ranges) is validated at open, after the checksum; a
//! file that passes [`Segment::open`] cannot make any later read panic.

use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use super::codec;
use super::mmap::{map_file, MapData};
use super::{fnv_bytes, StoreError, FNV_OFFSET, FORMAT_VERSION};
use crate::graph::IdTriple;
use crate::intern::TermId;
use crate::run::{RunCursor, RunSpec};
use crate::stats::{GraphStats, PredicateStats};
use crate::term::Term;
use crate::view::GraphView;

pub(crate) const MAGIC: &[u8; 7] = b"FEOSEG\0";
const HEADER_LEN: usize = 48;

fn le32(b: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([b[at], b[at + 1], b[at + 2], b[at + 3]])
}

fn le64(b: &[u8], at: usize) -> u64 {
    u64::from_le_bytes([
        b[at],
        b[at + 1],
        b[at + 2],
        b[at + 3],
        b[at + 4],
        b[at + 5],
        b[at + 6],
        b[at + 7],
    ])
}

// ---- stats / meta section codecs ------------------------------------

fn encode_stats(out: &mut Vec<u8>, stats: &GraphStats) {
    match stats.rdf_type_id() {
        Some(id) => {
            out.push(1);
            out.extend_from_slice(&id.0.to_le_bytes());
        }
        None => {
            out.push(0);
            out.extend_from_slice(&0u32.to_le_bytes());
        }
    }
    out.extend_from_slice(&stats.total_triples().to_le_bytes());
    let preds = stats.predicate_entries();
    out.extend_from_slice(&(preds.len() as u32).to_le_bytes());
    for (p, ps) in preds {
        out.extend_from_slice(&p.to_le_bytes());
        out.extend_from_slice(&ps.triples.to_le_bytes());
        out.extend_from_slice(&ps.distinct_subjects.to_le_bytes());
        out.extend_from_slice(&ps.distinct_objects.to_le_bytes());
    }
    let classes = stats.class_entries();
    out.extend_from_slice(&(classes.len() as u32).to_le_bytes());
    for (c, n) in classes {
        out.extend_from_slice(&c.to_le_bytes());
        out.extend_from_slice(&n.to_le_bytes());
    }
}

fn decode_stats(bytes: &[u8]) -> Result<GraphStats, StoreError> {
    let mut r = codec::Reader::new(bytes, "segment stats");
    let has_type = r.u8()?;
    let raw_type = r.u32()?;
    let rdf_type = if has_type != 0 {
        Some(TermId(raw_type))
    } else {
        None
    };
    let total = r.u64()?;
    let np = r.u32()? as usize;
    let mut preds = Vec::with_capacity(np.min(bytes.len() / 28));
    for _ in 0..np {
        let p = r.u32()?;
        let triples = r.u64()?;
        let distinct_subjects = r.u64()?;
        let distinct_objects = r.u64()?;
        preds.push((
            p,
            PredicateStats {
                triples,
                distinct_subjects,
                distinct_objects,
            },
        ));
    }
    let nc = r.u32()? as usize;
    let mut classes = Vec::with_capacity(nc.min(bytes.len() / 12));
    for _ in 0..nc {
        let c = r.u32()?;
        let n = r.u64()?;
        classes.push((c, n));
    }
    if !r.is_empty() {
        return Err(StoreError::Corrupt {
            what: "segment stats: trailing bytes".to_string(),
        });
    }
    Ok(GraphStats::from_entries(rdf_type, total, preds, classes))
}

// ---- writer ----------------------------------------------------------

/// Serializes `view` (with its maintained `stats` and the engine's
/// epoch-0 inferred-triple count) into segment bytes.
fn segment_bytes<V: GraphView + ?Sized>(
    view: &V,
    stats: &GraphStats,
    base_inferred: u64,
) -> Vec<u8> {
    let n = view.term_count();

    // Dictionary in dense id order, plus cumulative offsets.
    let mut dict_blob = Vec::new();
    let mut offsets: Vec<u64> = Vec::with_capacity(n + 1);
    let mut encoded_bounds: Vec<(usize, usize)> = Vec::with_capacity(n);
    offsets.push(0);
    for i in 0..n {
        let start = dict_blob.len();
        codec::encode_term(&mut dict_blob, view.term(TermId(i as u32)));
        encoded_bounds.push((start, dict_blob.len()));
        offsets.push(dict_blob.len() as u64);
    }

    // Permutation of ids sorted by encoded bytes (the lookup index).
    let mut perm: Vec<u32> = (0..n as u32).collect();
    perm.sort_unstable_by(|&a, &b| {
        let (sa, ea) = encoded_bounds[a as usize];
        let (sb, eb) = encoded_bounds[b as usize];
        dict_blob[sa..ea].cmp(&dict_blob[sb..eb])
    });

    // The three sorted runs.
    let mut spo: Vec<[u32; 3]> = view.iter_ids().map(|[s, p, o]| [s.0, p.0, o.0]).collect();
    spo.sort_unstable();
    spo.dedup();
    let mut pos: Vec<[u32; 3]> = spo.iter().map(|&[s, p, o]| [p, o, s]).collect();
    pos.sort_unstable();
    let mut osp: Vec<[u32; 3]> = spo.iter().map(|&[s, p, o]| [o, s, p]).collect();
    osp.sort_unstable();

    let mut stats_section = Vec::new();
    encode_stats(&mut stats_section, stats);
    let meta_section = base_inferred.to_le_bytes();

    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.push(FORMAT_VERSION);
    out.extend_from_slice(&[0u8; 8]); // checksum patched below
    out.extend_from_slice(&(n as u64).to_le_bytes());
    out.extend_from_slice(&(spo.len() as u64).to_le_bytes());
    out.extend_from_slice(&(stats_section.len() as u64).to_le_bytes());
    out.extend_from_slice(&(meta_section.len() as u64).to_le_bytes());
    for off in &offsets {
        out.extend_from_slice(&off.to_le_bytes());
    }
    out.extend_from_slice(&dict_blob);
    for id in &perm {
        out.extend_from_slice(&id.to_le_bytes());
    }
    for run in [&spo, &pos, &osp] {
        for &[a, b, c] in run.iter() {
            out.extend_from_slice(&a.to_le_bytes());
            out.extend_from_slice(&b.to_le_bytes());
            out.extend_from_slice(&c.to_le_bytes());
        }
    }
    out.extend_from_slice(&stats_section);
    out.extend_from_slice(&meta_section);

    let checksum = fnv_bytes(FNV_OFFSET, &out[16..]);
    out[8..16].copy_from_slice(&checksum.to_le_bytes());
    out
}

/// Writes `view` as a segment file at `path`, crash-safely: the bytes
/// land in `<path>.tmp` first, are fsynced, and only then renamed over
/// `path` — a crash mid-write leaves either the old file or none.
pub fn write_segment<V: GraphView + ?Sized>(
    path: &Path,
    view: &V,
    stats: &GraphStats,
    base_inferred: u64,
) -> Result<(), StoreError> {
    let bytes = segment_bytes(view, stats, base_inferred);
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, &bytes).map_err(|e| StoreError::io("write", &tmp, e))?;
    if let Ok(f) = std::fs::File::open(&tmp) {
        f.sync_all().map_err(|e| StoreError::io("fsync", &tmp, e))?;
    }
    std::fs::rename(&tmp, path).map_err(|e| StoreError::io("rename", path, e))?;
    Ok(())
}

// ---- Segment ---------------------------------------------------------

/// An open (usually memory-mapped) segment file: a read-only
/// [`GraphView`] whose ids match the graph it was written from.
pub struct Segment {
    data: MapData,
    path: PathBuf,
    term_count: usize,
    triple_count: usize,
    dict_offsets: usize, // byte offset of the offset table
    dict_blob: Range<usize>,
    perm: usize, // byte offset of the permutation
    spo: usize,  // byte offsets of the three runs
    pos: usize,
    osp: usize,
    stats: GraphStats,
    base_inferred: u64,
    /// Lazily-decoded term cache, one slot per dictionary entry.
    terms: Vec<OnceLock<Term>>,
    /// Sentinel returned for out-of-range ids instead of panicking.
    /// Unreachable through normal engine reads (ids come from this
    /// segment's own dictionary), but keeps `term()` total.
    corrupt: Term,
}

impl std::fmt::Debug for Segment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Segment")
            .field("path", &self.path)
            .field("terms", &self.term_count)
            .field("triples", &self.triple_count)
            .field("mapped", &self.data.is_mapped())
            .finish()
    }
}

impl Segment {
    /// Opens and fully validates a segment file. After `open` succeeds,
    /// no read on the returned value can panic — every bound checked
    /// here is what the read paths rely on.
    pub fn open(path: &Path, verify_checksum: bool) -> Result<Segment, StoreError> {
        let data = map_file(path)?;
        let bytes = data.bytes();
        if bytes.len() < HEADER_LEN {
            return Err(StoreError::Truncated {
                what: "segment header",
            });
        }
        if &bytes[..7] != MAGIC {
            return Err(StoreError::BadMagic {
                path: path.to_path_buf(),
            });
        }
        if bytes[7] != FORMAT_VERSION {
            return Err(StoreError::UnsupportedVersion {
                path: path.to_path_buf(),
                found: bytes[7],
            });
        }
        let term_count_raw = le64(bytes, 16);
        let triple_count_raw = le64(bytes, 24);
        let stats_len = le64(bytes, 32) as usize;
        let meta_len = le64(bytes, 40) as usize;
        if term_count_raw > u64::from(u32::MAX) || triple_count_raw > u64::from(u32::MAX) {
            return Err(StoreError::Corrupt {
                what: "segment header: counts exceed u32 id space".to_string(),
            });
        }
        let n = term_count_raw as usize;
        let t = triple_count_raw as usize;

        // Section layout, with overflow-checked arithmetic: a corrupt
        // header must not wrap these into "valid" small offsets.
        let sized = (|| {
            let dict_offsets = HEADER_LEN;
            let blob_start = dict_offsets.checked_add(n.checked_add(1)?.checked_mul(8)?)?;
            let after_blob_fixed = n
                .checked_mul(4)? // perm
                .checked_add(t.checked_mul(36)?)? // three runs
                .checked_add(stats_len)?
                .checked_add(meta_len)?;
            let blob_len = bytes
                .len()
                .checked_sub(blob_start)?
                .checked_sub(after_blob_fixed)?;
            Some((dict_offsets, blob_start, blob_len))
        })();
        let (dict_offsets, blob_start, blob_len) = match sized {
            Some(v) => v,
            None => {
                return Err(StoreError::Truncated {
                    what: "segment sections",
                })
            }
        };
        let perm = blob_start + blob_len;
        let spo = perm + n * 4;
        let pos = spo + t * 12;
        let osp = pos + t * 12;
        let stats_at = osp + t * 12;
        let meta_at = stats_at + stats_len;
        debug_assert_eq!(meta_at + meta_len, bytes.len());

        if verify_checksum {
            let stored = le64(bytes, 8);
            let actual = fnv_bytes(FNV_OFFSET, &bytes[16..]);
            if stored != actual {
                return Err(StoreError::ChecksumMismatch {
                    what: "segment body",
                });
            }
        }

        // Offset table: monotone, in-bounds, covering the whole blob.
        let mut prev = 0u64;
        for i in 0..=n {
            let off = le64(bytes, dict_offsets + i * 8);
            if off < prev || off > blob_len as u64 {
                return Err(StoreError::Corrupt {
                    what: format!("segment dictionary: offset {i} out of order or out of bounds"),
                });
            }
            prev = off;
        }
        if prev != blob_len as u64 {
            return Err(StoreError::Corrupt {
                what: "segment dictionary: offsets do not cover the blob".to_string(),
            });
        }

        // Permutation: in-range ids whose dictionary entries are
        // strictly increasing byte-wise. Strictness over n entries
        // implies all entries are distinct, hence a true permutation.
        let entry = |id: usize| -> &[u8] {
            let s = le64(bytes, dict_offsets + id * 8) as usize;
            let e = le64(bytes, dict_offsets + (id + 1) * 8) as usize;
            &bytes[blob_start + s..blob_start + e]
        };
        let mut prev_id: Option<usize> = None;
        for i in 0..n {
            let id = le32(bytes, perm + i * 4) as usize;
            if id >= n {
                return Err(StoreError::Corrupt {
                    what: format!("segment permutation: id {id} out of range"),
                });
            }
            if let Some(p) = prev_id {
                if entry(p) >= entry(id) {
                    return Err(StoreError::Corrupt {
                        what: "segment permutation: entries not strictly sorted".to_string(),
                    });
                }
            }
            prev_id = Some(id);
        }

        // Runs: sorted, deduplicated, ids in range.
        for (name, at) in [("spo", spo), ("pos", pos), ("osp", osp)] {
            let mut prev: Option<[u32; 3]> = None;
            for i in 0..t {
                let base = at + i * 12;
                let tri = [
                    le32(bytes, base),
                    le32(bytes, base + 4),
                    le32(bytes, base + 8),
                ];
                if tri.iter().any(|&id| id as usize >= n) {
                    return Err(StoreError::Corrupt {
                        what: format!("segment {name} run: term id out of range"),
                    });
                }
                if let Some(p) = prev {
                    if p >= tri {
                        return Err(StoreError::Corrupt {
                            what: format!("segment {name} run: not strictly sorted"),
                        });
                    }
                }
                prev = Some(tri);
            }
        }

        let stats = decode_stats(&bytes[stats_at..stats_at + stats_len])?;
        if stats.total_triples() != t as u64 {
            return Err(StoreError::Corrupt {
                what: "segment stats: total disagrees with triple count".to_string(),
            });
        }
        if let Some(ty) = stats.rdf_type_id() {
            if ty.index() >= n {
                return Err(StoreError::Corrupt {
                    what: "segment stats: rdf:type id out of range".to_string(),
                });
            }
        }
        let mut meta = codec::Reader::new(&bytes[meta_at..meta_at + meta_len], "segment meta");
        let base_inferred = meta.u64()?;
        if !meta.is_empty() {
            return Err(StoreError::Corrupt {
                what: "segment meta: trailing bytes".to_string(),
            });
        }

        let mut terms = Vec::with_capacity(n);
        terms.resize_with(n, OnceLock::new);
        Ok(Segment {
            data,
            path: path.to_path_buf(),
            term_count: n,
            triple_count: t,
            dict_offsets,
            dict_blob: blob_start..blob_start + blob_len,
            perm,
            spo,
            pos,
            osp,
            stats,
            base_inferred,
            terms,
            corrupt: Term::iri("urn:feo:store:corrupt-term"),
        })
    }

    /// The maintained statistics persisted with the graph.
    pub fn stats(&self) -> &GraphStats {
        &self.stats
    }

    /// Inferred-triple count of the materialized closure stored here
    /// (epoch 0's share of `InferenceResult::added`).
    pub fn base_inferred(&self) -> u64 {
        self.base_inferred
    }

    /// The file this segment was opened from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// True when reads go through a memory mapping (vs. an owned copy).
    pub fn is_mapped(&self) -> bool {
        self.data.is_mapped()
    }

    fn dict_entry(&self, id: usize) -> &[u8] {
        let bytes = self.data.bytes();
        let s = le64(bytes, self.dict_offsets + id * 8) as usize;
        let e = le64(bytes, self.dict_offsets + (id + 1) * 8) as usize;
        &bytes[self.dict_blob.start + s..self.dict_blob.start + e]
    }

    fn tri_at(&self, run: usize, i: usize) -> [u32; 3] {
        let bytes = self.data.bytes();
        let base = run + i * 12;
        [
            le32(bytes, base),
            le32(bytes, base + 4),
            le32(bytes, base + 8),
        ]
    }

    /// Index of the first triple in `run` that is `>= key`.
    fn lower_bound(&self, run: usize, key: [u32; 3]) -> usize {
        let (mut lo, mut hi) = (0usize, self.triple_count);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.tri_at(run, mid) < key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// The `[a, b, *]` / `[a, *, *]` / `[*, *, *]` prefix range of a
    /// run — the mmap dual of the ledger's sorted-slice `scan2`.
    fn scan(&self, run: usize, a: Option<u32>, b: Option<u32>) -> Range<usize> {
        let (lo, hi) = match (a, b) {
            (Some(a), Some(b)) => ([a, b, 0], [a, b, u32::MAX]),
            (Some(a), None) => ([a, 0, 0], [a, u32::MAX, u32::MAX]),
            (None, _) => return 0..self.triple_count,
        };
        let start = self.lower_bound(run, lo);
        let mut end = start;
        while end < self.triple_count && self.tri_at(run, end) <= hi {
            end += 1;
        }
        start..end
    }

    fn collect(
        &self,
        run: usize,
        range: Range<usize>,
        map: fn([u32; 3]) -> [u32; 3],
    ) -> Vec<IdTriple> {
        range
            .map(|i| {
                let [a, b, c] = map(self.tri_at(run, i));
                [TermId(a), TermId(b), TermId(c)]
            })
            .collect()
    }
}

/// Sorted, seekable cursor over the tail column of one `[a, b, *]`
/// prefix range of an mmap run: reads the mapped bytes in place, so a
/// leapfrog join over a disk-backed base never materializes the run.
pub struct SegmentRun<'a> {
    seg: &'a Segment,
    run: usize,
    at: usize,
    end: usize,
}

impl<'a> SegmentRun<'a> {
    fn new(seg: &'a Segment, run: usize, a: u32, b: u32) -> SegmentRun<'a> {
        let range = seg.scan(run, Some(a), Some(b));
        SegmentRun {
            seg,
            run,
            at: range.start,
            end: range.end,
        }
    }

    fn val(&self, i: usize) -> u32 {
        self.seg.tri_at(self.run, i)[2]
    }
}

impl RunCursor for SegmentRun<'_> {
    fn peek(&self) -> Option<TermId> {
        (self.at < self.end).then(|| TermId(self.val(self.at)))
    }

    fn advance(&mut self) {
        if self.at < self.end {
            self.at += 1;
        }
    }

    fn seek(&mut self, target: TermId) {
        if self.peek().is_some_and(|v| v >= target) {
            return;
        }
        // Gallop then binary search, bounded to the prefix range.
        let mut step = 1usize;
        let mut lo = self.at;
        while lo + step < self.end && self.val(lo + step) < target.0 {
            lo += step;
            step *= 2;
        }
        let mut hi = (lo + step + 1).min(self.end);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.val(mid) < target.0 {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        self.at = lo;
    }
}

impl GraphView for Segment {
    fn len(&self) -> usize {
        self.triple_count
    }

    fn term_count(&self) -> usize {
        self.term_count
    }

    fn lookup(&self, term: &Term) -> Option<TermId> {
        let key = codec::term_bytes(term);
        let bytes = self.data.bytes();
        let (mut lo, mut hi) = (0usize, self.term_count);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let id = le32(bytes, self.perm + mid * 4) as usize;
            match self.dict_entry(id).cmp(key.as_slice()) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Some(TermId(id as u32)),
            }
        }
        None
    }

    fn term(&self, id: TermId) -> &Term {
        match self.terms.get(id.index()) {
            Some(slot) => slot.get_or_init(|| {
                // Validation at open guarantees the entry decodes; the
                // sentinel fallback only exists to keep this total.
                codec::decode_term_exact(self.dict_entry(id.index()), "segment dictionary")
                    .unwrap_or_else(|_| self.corrupt.clone())
            }),
            None => &self.corrupt,
        }
    }

    fn contains_ids(&self, s: TermId, p: TermId, o: TermId) -> bool {
        let key = [s.0, p.0, o.0];
        let at = self.lower_bound(self.spo, key);
        at < self.triple_count && self.tri_at(self.spo, at) == key
    }

    fn match_pattern(
        &self,
        s: Option<TermId>,
        p: Option<TermId>,
        o: Option<TermId>,
    ) -> Vec<IdTriple> {
        let id = |x: TermId| x.0;
        match (s.map(id), p.map(id), o.map(id)) {
            (Some(s), Some(p), Some(o)) => {
                if self.contains_ids(TermId(s), TermId(p), TermId(o)) {
                    vec![[TermId(s), TermId(p), TermId(o)]]
                } else {
                    Vec::new()
                }
            }
            (Some(s), p, None) => {
                let r = self.scan(self.spo, Some(s), p);
                self.collect(self.spo, r, |t| t)
            }
            (None, Some(p), o) => {
                let r = self.scan(self.pos, Some(p), o);
                self.collect(self.pos, r, |[p, o, s]| [s, p, o])
            }
            (Some(s), None, Some(o)) => {
                let r = self.scan(self.osp, Some(o), Some(s));
                self.collect(self.osp, r, |[o, s, p]| [s, p, o])
            }
            (None, None, Some(o)) => {
                let r = self.scan(self.osp, Some(o), None);
                self.collect(self.osp, r, |[o, s, p]| [s, p, o])
            }
            (None, None, None) => self.collect(self.spo, 0..self.triple_count, |t| t),
        }
    }

    fn maintained_stats(&self) -> Option<&GraphStats> {
        Some(&self.stats)
    }

    fn ordered_run(&self, spec: RunSpec) -> Box<dyn RunCursor + '_> {
        match spec {
            RunSpec::Subjects { p, o } => Box::new(SegmentRun::new(self, self.pos, p.0, o.0)),
            RunSpec::Objects { s, p } => Box::new(SegmentRun::new(self, self.spo, s.0, p.0)),
        }
    }

    fn iter_ids(&self) -> Box<dyn Iterator<Item = IdTriple> + '_> {
        Box::new((0..self.triple_count).map(move |i| {
            let [s, p, o] = self.tri_at(self.spo, i);
            [TermId(s), TermId(p), TermId(o)]
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::vocab::rdf;

    fn sample() -> Graph {
        let mut g = Graph::new();
        g.insert_iris("http://e/a", rdf::TYPE, "http://e/Food");
        g.insert_iris("http://e/b", rdf::TYPE, "http://e/Food");
        g.insert_iris("http://e/a", "http://e/p", "http://e/b");
        g.insert_iris("http://e/b", "http://e/p", "http://e/c");
        let lit = g.intern(&Term::simple("crisp"));
        let a = g.lookup_iri("http://e/a").unwrap();
        let label = g.intern_iri("http://e/label");
        g.insert_ids(a, label, lit);
        let b = g.fresh_bnode();
        let p = g.lookup_iri("http://e/p").unwrap();
        g.insert_ids(b, p, a);
        g
    }

    fn tmp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("feo-seg-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn segment_round_trips_graph_reads() {
        let g = sample();
        let path = tmp_path("round.feo");
        write_segment(&path, &g, g.stats(), 7).unwrap();
        let seg = Segment::open(&path, true).unwrap();

        assert_eq!(GraphView::len(&seg), g.len());
        assert_eq!(GraphView::term_count(&seg), g.term_count());
        assert_eq!(seg.base_inferred(), 7);

        // Ids are preserved verbatim: every term resolves identically.
        for i in 0..g.term_count() {
            let id = TermId(i as u32);
            assert_eq!(GraphView::term(&seg, id), g.term(id), "term {i}");
            assert_eq!(GraphView::lookup(&seg, g.term(id)), Some(id));
        }
        assert_eq!(GraphView::lookup(&seg, &Term::iri("http://e/absent")), None);

        // All pattern shapes agree with the source graph.
        let ids: Vec<Option<TermId>> = (0..g.term_count())
            .map(|i| Some(TermId(i as u32)))
            .chain([None])
            .collect();
        for &s in &ids {
            for &p in &ids {
                for &o in &ids {
                    let mut want = g.match_pattern(s, p, o);
                    let mut got = seg.match_pattern(s, p, o);
                    want.sort_unstable();
                    got.sort_unstable();
                    assert_eq!(want, got, "pattern {s:?} {p:?} {o:?}");
                }
            }
        }

        // Persisted stats answer exactly like the live ones.
        let p = g.lookup_iri("http://e/p").unwrap();
        assert_eq!(seg.predicate_stats(p), g.stats().predicate(p));
        let food = g.lookup_iri("http://e/Food").unwrap();
        assert_eq!(seg.class_instance_count(food), 2);
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = Graph::new();
        let path = tmp_path("empty.feo");
        write_segment(&path, &g, g.stats(), 0).unwrap();
        let seg = Segment::open(&path, true).unwrap();
        assert_eq!(GraphView::len(&seg), 0);
        assert_eq!(GraphView::term_count(&seg), 0);
        assert!(seg.match_pattern(None, None, None).is_empty());
        assert_eq!(GraphView::lookup(&seg, &Term::iri("http://e/x")), None);
    }

    #[test]
    fn corruption_is_typed_never_panicking() {
        let g = sample();
        let path = tmp_path("corrupt.feo");
        write_segment(&path, &g, g.stats(), 0).unwrap();
        let good = std::fs::read(&path).unwrap();

        // Truncation at every prefix length: typed error, no panic.
        let tpath = tmp_path("trunc.feo");
        for cut in [0, 7, 8, 16, 47, 48, good.len() / 2, good.len() - 1] {
            std::fs::write(&tpath, &good[..cut]).unwrap();
            assert!(Segment::open(&tpath, true).is_err(), "cut at {cut}");
        }

        // A bit flip anywhere in the body fails the checksum (or an
        // earlier structural check).
        let fpath = tmp_path("flip.feo");
        for &at in &[0usize, 7, 9, 20, 50, good.len() - 1] {
            let mut bad = good.clone();
            bad[at] ^= 0x40;
            std::fs::write(&fpath, &bad).unwrap();
            assert!(Segment::open(&fpath, true).is_err(), "flip at {at}");
        }

        // Wrong magic and wrong version get their own variants.
        let mut bad = good.clone();
        bad[0] = b'X';
        std::fs::write(&fpath, &bad).unwrap();
        assert!(matches!(
            Segment::open(&fpath, true),
            Err(StoreError::BadMagic { .. })
        ));
        let mut bad = good.clone();
        bad[7] = 99;
        std::fs::write(&fpath, &bad).unwrap();
        assert!(matches!(
            Segment::open(&fpath, true),
            Err(StoreError::UnsupportedVersion { found: 99, .. })
        ));
    }
}
