//! The on-disk store directory: MANIFEST + paired segment/WAL files.
//!
//! ```text
//! <dir>/MANIFEST            "feo-store 1\n<index>\n" (tmp+rename)
//! <dir>/segment-000000.feo  the active base segment
//! <dir>/wal-000000.feo      the delta log paired with that segment
//! ```
//!
//! The WAL is *named after* its segment index, so the MANIFEST rename
//! switches both atomically: compaction writes `segment-000001.feo`
//! plus an empty `wal-000001.feo`, then renames the MANIFEST — a crash
//! on either side of that rename leaves a fully consistent store (the
//! old pair, or the new one). Stale pairs are deleted best-effort
//! afterwards.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use super::segment::{write_segment, Segment};
use super::wal::{self, WalRecord};
use super::{OpenOptions, StoreError, FORMAT_VERSION};
use crate::stats::GraphStats;
use crate::view::GraphView;

const MANIFEST: &str = "MANIFEST";

/// Handle to a store directory and its active segment/WAL pair.
#[derive(Debug, Clone)]
pub struct DiskStore {
    dir: PathBuf,
    index: u64,
}

/// Everything [`DiskStore::open`] yields: the handle, the mapped
/// segment, the replayable WAL records, and — after a crash tore the
/// log — the typed error describing what recovery truncated away.
#[derive(Debug)]
pub struct OpenedStore {
    pub store: DiskStore,
    pub segment: Arc<Segment>,
    /// WAL records of the intact prefix, oldest first, id-validated
    /// against the segment's dictionary.
    pub records: Vec<WalRecord>,
    /// Damage found (and repaired by truncation) in the WAL tail.
    pub recovered: Option<StoreError>,
}

fn manifest_path(dir: &Path) -> PathBuf {
    dir.join(MANIFEST)
}

fn read_manifest(dir: &Path) -> Result<u64, StoreError> {
    let path = manifest_path(dir);
    let text = std::fs::read_to_string(&path).map_err(|e| StoreError::io("read", &path, e))?;
    let mut lines = text.lines();
    match lines.next() {
        Some(l) if l == format!("feo-store {FORMAT_VERSION}") => {}
        Some(l) => {
            let found = l
                .strip_prefix("feo-store ")
                .and_then(|v| v.parse::<u8>().ok());
            return Err(match found {
                Some(v) => StoreError::UnsupportedVersion { path, found: v },
                None => StoreError::BadMagic { path },
            });
        }
        None => return Err(StoreError::Truncated { what: "manifest" }),
    }
    lines
        .next()
        .and_then(|l| l.trim().parse::<u64>().ok())
        .ok_or(StoreError::Corrupt {
            what: "manifest: missing or non-numeric segment index".to_string(),
        })
}

fn write_manifest(dir: &Path, index: u64) -> Result<(), StoreError> {
    let path = manifest_path(dir);
    let tmp = dir.join("MANIFEST.tmp");
    let body = format!("feo-store {FORMAT_VERSION}\n{index}\n");
    std::fs::write(&tmp, body).map_err(|e| StoreError::io("write", &tmp, e))?;
    if let Ok(f) = std::fs::File::open(&tmp) {
        f.sync_all().map_err(|e| StoreError::io("fsync", &tmp, e))?;
    }
    std::fs::rename(&tmp, &path).map_err(|e| StoreError::io("rename", &path, e))?;
    Ok(())
}

impl DiskStore {
    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The active segment's index (bumped by every save/compact).
    pub fn segment_index(&self) -> u64 {
        self.index
    }

    /// Path of the active segment file.
    pub fn segment_path(&self) -> PathBuf {
        self.dir.join(format!("segment-{:06}.feo", self.index))
    }

    /// Path of the active WAL file.
    pub fn wal_path(&self) -> PathBuf {
        self.dir.join(format!("wal-{:06}.feo", self.index))
    }

    /// Writes a complete store into `dir`: a segment holding `view`
    /// plus a WAL holding `records`, published by the MANIFEST rename.
    /// An existing store in the same directory is superseded (new
    /// index) and its files removed best-effort.
    pub fn save<V: GraphView + ?Sized>(
        dir: &Path,
        view: &V,
        stats: &GraphStats,
        base_inferred: u64,
        records: &[WalRecord],
    ) -> Result<DiskStore, StoreError> {
        std::fs::create_dir_all(dir).map_err(|e| StoreError::io("mkdir", dir, e))?;
        let old = read_manifest(dir).ok();
        let index = old.map_or(0, |i| i + 1);
        let store = DiskStore {
            dir: dir.to_path_buf(),
            index,
        };
        write_segment(&store.segment_path(), view, stats, base_inferred)?;
        let mut wal_bytes = wal::header().to_vec();
        for rec in records {
            wal_bytes.extend_from_slice(&wal::encode_record(rec));
        }
        let wal_path = store.wal_path();
        std::fs::write(&wal_path, &wal_bytes).map_err(|e| StoreError::io("write", &wal_path, e))?;
        write_manifest(dir, index)?;
        if let Some(old_index) = old {
            let stale = DiskStore {
                dir: dir.to_path_buf(),
                index: old_index,
            };
            let _ = std::fs::remove_file(stale.segment_path());
            let _ = std::fs::remove_file(stale.wal_path());
        }
        Ok(store)
    }

    /// Opens the store in `dir`: maps the active segment, scans the
    /// WAL, repairs a torn tail by truncating to the intact prefix, and
    /// validates every record's term ids against the dictionary they
    /// extend.
    pub fn open(dir: &Path, opts: OpenOptions) -> Result<OpenedStore, StoreError> {
        let index = read_manifest(dir)?;
        let store = DiskStore {
            dir: dir.to_path_buf(),
            index,
        };
        let segment = Segment::open(&store.segment_path(), opts.verify_checksum)?;
        let wal_path = store.wal_path();
        let replay = wal::read_wal(&wal_path)?;
        let recovered = replay.truncated;
        if recovered.is_some() {
            // Truncate back to the intact prefix so future appends
            // extend a consistent log. A sub-header file is rewritten
            // as a fresh empty log.
            if (replay.valid_len as usize) >= wal::HEADER_LEN {
                let f = std::fs::OpenOptions::new()
                    .write(true)
                    .open(&wal_path)
                    .map_err(|e| StoreError::io("open", &wal_path, e))?;
                f.set_len(replay.valid_len)
                    .map_err(|e| StoreError::io("truncate", &wal_path, e))?;
                f.sync_all()
                    .map_err(|e| StoreError::io("fsync", &wal_path, e))?;
            } else {
                std::fs::write(&wal_path, wal::header())
                    .map_err(|e| StoreError::io("write", &wal_path, e))?;
            }
        }
        // Each record's triples may only reference the dictionary as it
        // stood when that record was committed: segment terms plus all
        // earlier spills plus its own.
        let mut term_limit = segment.term_count();
        for (k, rec) in replay.records.iter().enumerate() {
            let limit = term_limit + rec.terms.len();
            if rec.triples.iter().flatten().any(|&id| id as usize >= limit) {
                return Err(StoreError::Corrupt {
                    what: format!("wal record {k}: term id beyond dictionary"),
                });
            }
            term_limit = limit;
        }
        Ok(OpenedStore {
            store,
            segment: Arc::new(segment),
            records: replay.records,
            recovered,
        })
    }

    /// Appends one committed layer to the WAL (fsynced).
    pub fn append_delta(&self, rec: &WalRecord) -> Result<(), StoreError> {
        wal::append_record(&self.wal_path(), rec)
    }

    /// Compacts: freezes `view` (the current head, layers folded in) as
    /// a new base segment with an empty WAL, switches the MANIFEST to
    /// the new pair, and removes the old one best-effort. On return
    /// `self` addresses the new pair.
    pub fn compact<V: GraphView + ?Sized>(
        &mut self,
        view: &V,
        stats: &GraphStats,
        base_inferred: u64,
    ) -> Result<(), StoreError> {
        let next = DiskStore {
            dir: self.dir.clone(),
            index: self.index + 1,
        };
        write_segment(&next.segment_path(), view, stats, base_inferred)?;
        let wal_path = next.wal_path();
        std::fs::write(&wal_path, wal::header())
            .map_err(|e| StoreError::io("write", &wal_path, e))?;
        write_manifest(&self.dir, next.index)?;
        let _ = std::fs::remove_file(self.segment_path());
        let _ = std::fs::remove_file(self.wal_path());
        self.index = next.index;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::term::Term;

    fn sample() -> Graph {
        let mut g = Graph::new();
        g.insert_iris("http://e/a", "http://e/p", "http://e/b");
        g.insert_iris("http://e/b", "http://e/p", "http://e/c");
        g
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("feo-store-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn delta_rec(g: &Graph) -> WalRecord {
        let n = g.term_count() as u32;
        WalRecord {
            label: "explain".to_string(),
            inferred: 1,
            terms: vec![Term::iri("http://e/new")],
            triples: vec![[0, 1, n]],
        }
    }

    #[test]
    fn save_open_append_reopen() {
        let g = sample();
        let dir = tmp_dir("rt");
        let store = DiskStore::save(&dir, &g, g.stats(), 3, &[]).unwrap();
        assert_eq!(store.segment_index(), 0);

        let opened = DiskStore::open(&dir, OpenOptions::default()).unwrap();
        assert!(opened.recovered.is_none());
        assert!(opened.records.is_empty());
        assert_eq!(GraphView::len(&*opened.segment), g.len());
        assert_eq!(opened.segment.base_inferred(), 3);

        opened.store.append_delta(&delta_rec(&g)).unwrap();
        let again = DiskStore::open(&dir, OpenOptions::default()).unwrap();
        assert_eq!(again.records.len(), 1);
        assert_eq!(again.records[0].label, "explain");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_wal_tail_is_truncated_on_open() {
        let g = sample();
        let dir = tmp_dir("tear");
        let store = DiskStore::save(&dir, &g, g.stats(), 0, &[delta_rec(&g)]).unwrap();
        let wal_path = store.wal_path();
        let full = std::fs::read(&wal_path).unwrap();
        // Tear mid-record.
        std::fs::write(&wal_path, &full[..full.len() - 3]).unwrap();

        let opened = DiskStore::open(&dir, OpenOptions::default()).unwrap();
        assert!(opened.recovered.is_some());
        assert!(opened.records.is_empty());
        // The file was repaired: a second open is clean.
        let again = DiskStore::open(&dir, OpenOptions::default()).unwrap();
        assert!(again.recovered.is_none());
        // And appending after recovery yields a readable record.
        again.store.append_delta(&delta_rec(&g)).unwrap();
        let third = DiskStore::open(&dir, OpenOptions::default()).unwrap();
        assert_eq!(third.records.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_ids_beyond_dictionary_are_corrupt() {
        let g = sample();
        let dir = tmp_dir("ids");
        let bad = WalRecord {
            label: "x".to_string(),
            inferred: 0,
            terms: Vec::new(),
            triples: vec![[0, 0, 9999]],
        };
        DiskStore::save(&dir, &g, g.stats(), 0, &[bad]).unwrap();
        assert!(matches!(
            DiskStore::open(&dir, OpenOptions::default()),
            Err(StoreError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compact_switches_pair_and_empties_wal() {
        let g = sample();
        let dir = tmp_dir("compact");
        DiskStore::save(&dir, &g, g.stats(), 0, &[delta_rec(&g)]).unwrap();
        let mut opened = DiskStore::open(&dir, OpenOptions::default()).unwrap();
        assert_eq!(opened.records.len(), 1);

        // Compact a bigger graph (as the engine would: head flattened).
        let mut g2 = sample();
        g2.insert_iris("http://e/c", "http://e/p", "http://e/d");
        opened.store.compact(&g2, g2.stats(), 2).unwrap();
        assert_eq!(opened.store.segment_index(), 1);

        let fresh = DiskStore::open(&dir, OpenOptions::default()).unwrap();
        assert_eq!(fresh.store.segment_index(), 1);
        assert!(fresh.records.is_empty());
        assert_eq!(GraphView::len(&*fresh.segment), 3);
        assert_eq!(fresh.segment.base_inferred(), 2);
        // Old pair is gone.
        assert!(!dir.join("segment-000000.feo").exists());
        assert!(!dir.join("wal-000000.feo").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_or_mangled_manifest_is_typed() {
        let dir = tmp_dir("manifest");
        assert!(matches!(
            DiskStore::open(&dir, OpenOptions::default()),
            Err(StoreError::Io { .. })
        ));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("MANIFEST"), "feo-store 9\n0\n").unwrap();
        assert!(matches!(
            DiskStore::open(&dir, OpenOptions::default()),
            Err(StoreError::UnsupportedVersion { found: 9, .. })
        ));
        std::fs::write(dir.join("MANIFEST"), "gibberish").unwrap();
        assert!(matches!(
            DiskStore::open(&dir, OpenOptions::default()),
            Err(StoreError::BadMagic { .. })
        ));
        std::fs::write(dir.join("MANIFEST"), "feo-store 1\n").unwrap();
        assert!(matches!(
            DiskStore::open(&dir, OpenOptions::default()),
            Err(StoreError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
