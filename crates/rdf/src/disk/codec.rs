//! Byte codec shared by segment dictionaries and WAL records.
//!
//! Terms are encoded with a one-byte tag and length-prefixed UTF-8
//! payloads. The encoding is *canonical*: `Literal`'s constructors
//! normalize at construction (typed `xsd:string` collapses to a simple
//! literal, language tags are lowercased), so encode∘decode is the
//! identity on `Term` and equal terms always produce equal bytes. That
//! makes the byte-sorted dictionary permutation a valid lookup index.
//!
//! All decoding goes through [`Reader`], which bounds-checks every read
//! and returns typed [`StoreError`]s — malformed bytes can never panic.

use super::StoreError;
use crate::term::{Literal, Term};
use crate::vocab::xsd;

/// `xsd:string` — typed literals with this datatype are stored as
/// simple literals (tag 2), mirroring `Literal::typed`'s normalization.
const XSD_STRING: &str = xsd::STRING;

const TAG_IRI: u8 = 0;
const TAG_BNODE: u8 = 1;
const TAG_SIMPLE: u8 = 2;
const TAG_LANG: u8 = 3;
const TAG_TYPED: u8 = 4;

fn push_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Appends the canonical encoding of `term` to `out`.
pub fn encode_term(out: &mut Vec<u8>, term: &Term) {
    match term {
        Term::Iri(iri) => {
            out.push(TAG_IRI);
            push_str(out, iri.as_str());
        }
        Term::BlankNode(b) => {
            out.push(TAG_BNODE);
            push_str(out, b.as_str());
        }
        Term::Literal(lit) => {
            if let Some(lang) = lit.language() {
                out.push(TAG_LANG);
                push_str(out, lit.lexical_form());
                push_str(out, lang);
            } else if lit.datatype().as_str() != XSD_STRING {
                out.push(TAG_TYPED);
                push_str(out, lit.lexical_form());
                push_str(out, lit.datatype().as_str());
            } else {
                out.push(TAG_SIMPLE);
                push_str(out, lit.lexical_form());
            }
        }
    }
}

/// Encodes a term to a fresh buffer.
pub fn term_bytes(term: &Term) -> Vec<u8> {
    let mut out = Vec::new();
    encode_term(&mut out, term);
    out
}

/// Bounds-checked cursor over a byte slice. Every accessor returns a
/// typed error instead of slicing past the end.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Context string used in error messages ("segment dictionary",
    /// "wal record", …).
    what: &'static str,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8], what: &'static str) -> Reader<'a> {
        Reader { buf, pos: 0, what }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    pub fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(StoreError::Truncated { what: self.what })?;
        if end > self.buf.len() {
            return Err(StoreError::Truncated { what: self.what });
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32, StoreError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn u64(&mut self) -> Result<u64, StoreError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// A `[u32 len][utf-8 bytes]` string.
    pub fn str(&mut self) -> Result<&'a str, StoreError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|_| StoreError::Corrupt {
            what: format!("{}: non-utf8 string", self.what),
        })
    }
}

/// Decodes one term from `r`. Trailing bytes are left for the caller —
/// segment dictionary entries must consume their slice exactly, which
/// [`decode_term_exact`] enforces.
pub fn decode_term(r: &mut Reader<'_>) -> Result<Term, StoreError> {
    let tag = r.u8()?;
    match tag {
        TAG_IRI => Ok(Term::iri(r.str()?)),
        TAG_BNODE => Ok(Term::bnode(r.str()?)),
        TAG_SIMPLE => Ok(Term::simple(r.str()?)),
        TAG_LANG => {
            let lex = r.str()?;
            let lang = r.str()?;
            Ok(Term::Literal(Literal::lang(lex, lang)))
        }
        TAG_TYPED => {
            let lex = r.str()?;
            let dt = r.str()?;
            Ok(Term::Literal(Literal::typed(
                lex,
                crate::term::Iri::new(dt),
            )))
        }
        other => Err(StoreError::Corrupt {
            what: format!("unknown term tag {other}"),
        }),
    }
}

/// Decodes a term that must occupy the whole slice (a dictionary entry
/// delimited by the offset table).
pub fn decode_term_exact(bytes: &[u8], what: &'static str) -> Result<Term, StoreError> {
    let mut r = Reader::new(bytes, what);
    let term = decode_term(&mut r)?;
    if !r.is_empty() {
        return Err(StoreError::Corrupt {
            what: format!("{what}: trailing bytes after term"),
        });
    }
    Ok(term)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(t: Term) {
        let bytes = term_bytes(&t);
        let back = decode_term_exact(&bytes, "test").unwrap();
        assert_eq!(t, back);
        // Canonical: re-encoding the decoded term gives the same bytes.
        assert_eq!(bytes, term_bytes(&back));
    }

    #[test]
    fn roundtrips_all_term_kinds() {
        roundtrip(Term::iri("http://example.org/Apple"));
        roundtrip(Term::bnode("b42"));
        roundtrip(Term::simple("crisp"));
        roundtrip(Term::Literal(Literal::lang("pomme", "FR")));
        roundtrip(Term::Literal(Literal::typed(
            "42",
            crate::term::Iri::new("http://www.w3.org/2001/XMLSchema#integer"),
        )));
        // xsd:string-typed literal normalizes to a simple literal and
        // must encode with the simple tag.
        let typed_string =
            Term::Literal(Literal::typed("plain", crate::term::Iri::new(XSD_STRING)));
        let bytes = term_bytes(&typed_string);
        assert_eq!(bytes[0], TAG_SIMPLE);
        roundtrip(typed_string);
        roundtrip(Term::simple(""));
    }

    #[test]
    fn truncated_bytes_yield_typed_errors() {
        let full = term_bytes(&Term::iri("http://example.org/long-enough"));
        for cut in 0..full.len() {
            let err = decode_term_exact(&full[..cut], "test");
            assert!(err.is_err(), "cut at {cut} should fail");
        }
        // Unknown tag.
        assert!(matches!(
            decode_term_exact(&[9, 0, 0, 0, 0], "test"),
            Err(StoreError::Corrupt { .. })
        ));
        // Non-UTF-8 payload.
        let mut bad = vec![TAG_IRI];
        bad.extend_from_slice(&2u32.to_le_bytes());
        bad.extend_from_slice(&[0xff, 0xfe]);
        assert!(matches!(
            decode_term_exact(&bad, "test"),
            Err(StoreError::Corrupt { .. })
        ));
        // Trailing garbage after a valid term.
        let mut trailing = term_bytes(&Term::simple("x"));
        trailing.push(0);
        assert!(matches!(
            decode_term_exact(&trailing, "test"),
            Err(StoreError::Corrupt { .. })
        ));
    }
}
