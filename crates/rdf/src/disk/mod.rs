//! Persistent dictionary-encoded storage: mmap segments + WAL deltas.
//!
//! The engine is otherwise memory-only — restart means re-parsing the
//! corpus and re-running OWL materialization. This module adds a second
//! backend under the [`GraphView`](crate::view::GraphView) seam:
//!
//! - [`segment`] — a write-once, dictionary-encoded segment file: term
//!   dictionary (dense id order, with a byte-sorted permutation for
//!   lookups) plus SPO/POS/OSP sorted runs that memory-map for
//!   zero-copy range scans, and the persisted [`GraphStats`] so the
//!   cost-based planner plans identically over disk and memory.
//! - [`wal`] — a write-ahead delta log holding every committed ledger
//!   layer since the segment was written, replayed on open so the
//!   ledger's epoch structure survives restart exactly.
//! - [`store`] — the on-disk directory tying both together (MANIFEST +
//!   active segment + WAL), with crash-safe tmp+rename publication and
//!   torn-tail WAL recovery.
//! - [`codec`] / [`mmap`] — the shared term byte codec and a minimal
//!   `mmap(2)` wrapper (with a plain read fallback).
//!
//! Corruption surfaces as typed [`StoreError`]s (wrapped in
//! [`RdfError::Store`](crate::RdfError::Store)); nothing in this module
//! panics on malformed bytes.
//!
//! [`GraphStats`]: crate::stats::GraphStats

pub mod codec;
pub mod mmap;
pub mod segment;
pub mod store;
pub mod wal;

pub use segment::Segment;
pub use store::{DiskStore, OpenedStore};
pub use wal::{WalRecord, WalReplay};

use std::fmt;
use std::path::{Path, PathBuf};

/// The on-disk format version this build reads and writes. Bumped on
/// any incompatible layout change; files carrying a different version
/// byte are rejected with [`StoreError::UnsupportedVersion`] rather
/// than misread.
pub const FORMAT_VERSION: u8 = 1;

/// Typed failure surface of the persistent store. Every corrupt or
/// unreadable byte pattern maps to one of these — the module never
/// panics on bad input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An OS-level I/O failure (open, read, write, rename, …).
    Io {
        /// The operation that failed (static description).
        op: &'static str,
        /// The file or directory involved.
        path: PathBuf,
        /// The OS error rendered as text (`std::io::Error` is neither
        /// `Clone` nor `PartialEq`, so we keep its message).
        detail: String,
    },
    /// The file does not start with the expected magic bytes.
    BadMagic { path: PathBuf },
    /// The file's format version byte is not one this build supports.
    UnsupportedVersion { path: PathBuf, found: u8 },
    /// The file ends before a structure it promised (header, offset
    /// table, run, record) — typically a truncated write.
    Truncated { what: &'static str },
    /// A stored checksum does not match the bytes it covers.
    ChecksumMismatch { what: &'static str },
    /// A structural invariant does not hold (offsets not monotone, runs
    /// unsorted, an id out of range, undecodable term bytes, …).
    Corrupt { what: String },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { op, path, detail } => {
                write!(f, "store i/o: {op} {}: {detail}", path.display())
            }
            StoreError::BadMagic { path } => {
                write!(f, "not a feo store file: {}", path.display())
            }
            StoreError::UnsupportedVersion { path, found } => write!(
                f,
                "unsupported store format version {found} (this build reads v{FORMAT_VERSION}): {}",
                path.display()
            ),
            StoreError::Truncated { what } => write!(f, "truncated store file: {what}"),
            StoreError::ChecksumMismatch { what } => {
                write!(f, "store checksum mismatch: {what}")
            }
            StoreError::Corrupt { what } => write!(f, "corrupt store file: {what}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl StoreError {
    /// Wraps an `std::io::Error` with its operation and path.
    pub(crate) fn io(op: &'static str, path: &Path, e: std::io::Error) -> StoreError {
        StoreError::Io {
            op,
            path: path.to_path_buf(),
            detail: e.to_string(),
        }
    }
}

/// Options for opening a segment / store.
#[derive(Debug, Clone, Copy)]
pub struct OpenOptions {
    /// Verify the segment's whole-file FNV checksum at open. One linear
    /// pass over the mapped bytes — vastly cheaper than the parse +
    /// materialize it replaces, but skippable for huge read-mostly
    /// deployments that trust the medium.
    pub verify_checksum: bool,
}

impl Default for OpenOptions {
    fn default() -> Self {
        OpenOptions {
            verify_checksum: true,
        }
    }
}

// FNV-1a — the same hand-rolled constants the ledger chain uses
// (`crate::ledger`); file checksums must not depend on the std hasher's
// per-process seed.

pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
pub(crate) const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over `bytes`, continuing from `h`.
pub(crate) fn fnv_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}
