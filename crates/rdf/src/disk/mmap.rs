//! Minimal read-only `mmap(2)` wrapper.
//!
//! The build environment has no `libc` crate, so the two syscalls we
//! need are declared directly (the same approach the serve crate takes
//! for its signal handler). Mapping is `PROT_READ` + `MAP_PRIVATE`:
//! the kernel pages segment bytes in on demand and shares them across
//! processes, which is what makes warm opens near-instant. If the map
//! fails (or on non-unix targets) we fall back to reading the file into
//! an owned buffer — same bytes, same API, just not zero-copy.

use super::StoreError;
use std::fs::File;
use std::io::Read;
use std::path::Path;

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

/// A read-only byte buffer that is either memory-mapped or owned.
pub enum MapData {
    Owned(Vec<u8>),
    #[cfg(unix)]
    Mapped {
        ptr: *const u8,
        len: usize,
    },
}

// SAFETY: the mapping is PROT_READ + MAP_PRIVATE over a write-once
// segment file — immutable shared bytes, safe to read from any thread.
#[cfg(unix)]
unsafe impl Send for MapData {}
#[cfg(unix)]
unsafe impl Sync for MapData {}

impl MapData {
    pub fn bytes(&self) -> &[u8] {
        match self {
            MapData::Owned(v) => v,
            #[cfg(unix)]
            MapData::Mapped { ptr, len } => {
                // SAFETY: ptr/len came from a successful mmap that this
                // value owns; munmap happens only in Drop.
                unsafe { std::slice::from_raw_parts(*ptr, *len) }
            }
        }
    }

    /// True when the bytes are served by the page cache rather than an
    /// owned heap buffer (used by `/ready` to report the store mode).
    pub fn is_mapped(&self) -> bool {
        match self {
            MapData::Owned(_) => false,
            #[cfg(unix)]
            MapData::Mapped { .. } => true,
        }
    }
}

impl Drop for MapData {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let MapData::Mapped { ptr, len } = *self {
            // SAFETY: exactly one munmap per successful mmap.
            unsafe {
                sys::munmap(ptr as *mut std::ffi::c_void, len);
            }
        }
    }
}

impl std::fmt::Debug for MapData {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapData::Owned(v) => write!(f, "MapData::Owned({} bytes)", v.len()),
            #[cfg(unix)]
            MapData::Mapped { len, .. } => write!(f, "MapData::Mapped({len} bytes)"),
        }
    }
}

/// Maps `path` read-only, falling back to an owned read on failure.
pub fn map_file(path: &Path) -> Result<MapData, StoreError> {
    let mut file = File::open(path).map_err(|e| StoreError::io("open", path, e))?;
    let len = file
        .metadata()
        .map_err(|e| StoreError::io("stat", path, e))?
        .len() as usize;
    // mmap of length 0 is EINVAL; an empty file is an owned empty buf.
    if len == 0 {
        return Ok(MapData::Owned(Vec::new()));
    }
    #[cfg(unix)]
    {
        use std::os::unix::io::AsRawFd;
        // SAFETY: fd is open for the duration of the call; a failed map
        // returns MAP_FAILED (-1) which we check before use.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize != -1 && !ptr.is_null() {
            return Ok(MapData::Mapped {
                ptr: ptr as *const u8,
                len,
            });
        }
    }
    let mut buf = Vec::with_capacity(len);
    file.read_to_end(&mut buf)
        .map_err(|e| StoreError::io("read", path, e))?;
    Ok(MapData::Owned(buf))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_and_reads_back() {
        let dir = std::env::temp_dir().join(format!("feo-mmap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("data.bin");
        std::fs::write(&path, b"hello segment").unwrap();
        let map = map_file(&path).unwrap();
        assert_eq!(map.bytes(), b"hello segment");
        #[cfg(unix)]
        assert!(map.is_mapped());
        drop(map);

        let empty = dir.join("empty.bin");
        std::fs::write(&empty, b"").unwrap();
        let map = map_file(&empty).unwrap();
        assert!(map.bytes().is_empty());
        assert!(!map.is_mapped());

        assert!(map_file(&dir.join("missing.bin")).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
