//! The write-ahead delta log: one record per committed ledger layer.
//!
//! A segment freezes epoch 0; everything committed after it goes here,
//! one self-checksummed record per [`Ledger::commit`] with exactly the
//! data `commit` consumed — the layer label, its inferred-triple count,
//! the spill dictionary, and the delta triples in SPO order. Replaying
//! the log through `Ledger::commit` therefore reconstructs the *same*
//! chain: same epochs, same term ids, same layer hashes.
//!
//! Layout: an 8-byte header (`b"FEOWAL\0"` + format version) followed
//! by records of `[u64 payload_len][u64 payload_fnv][payload]`. A crash
//! can tear the final record; [`parse_wal`] replays the intact prefix
//! and reports the tear as a typed [`StoreError`] in
//! [`WalReplay::truncated`], with [`WalReplay::valid_len`] marking
//! where the store should truncate to recover.
//!
//! [`Ledger::commit`]: crate::ledger::Ledger::commit

use std::io::Write;
use std::path::Path;

use super::codec;
use super::{fnv_bytes, StoreError, FNV_OFFSET, FORMAT_VERSION};
use crate::graph::IdTriple;
use crate::intern::TermId;
use crate::term::Term;

pub(crate) const MAGIC: &[u8; 7] = b"FEOWAL\0";
pub(crate) const HEADER_LEN: usize = 8;

/// One committed layer, exactly as `Ledger::commit` consumed it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// The commit label (`"explain"`, `"population"`, …).
    pub label: String,
    /// How many of the layer's triples the reasoner derived (the
    /// engine's per-commit share of `InferenceResult::added`).
    pub inferred: u64,
    /// Spill dictionary in id order: term `i` has id `term_base + i`.
    pub terms: Vec<Term>,
    /// Delta triples in SPO order, raw ids.
    pub triples: Vec<[u32; 3]>,
}

impl WalRecord {
    /// The delta triples as typed ids, ready for `Ledger::commit`.
    pub fn id_triples(&self) -> Vec<IdTriple> {
        self.triples
            .iter()
            .map(|&[s, p, o]| [TermId(s), TermId(p), TermId(o)])
            .collect()
    }
}

/// The 8-byte log header.
pub(crate) fn header() -> [u8; 8] {
    let mut h = [0u8; 8];
    h[..7].copy_from_slice(MAGIC);
    h[7] = FORMAT_VERSION;
    h
}

/// Serializes one record (length + checksum + payload).
pub fn encode_record(rec: &WalRecord) -> Vec<u8> {
    let mut payload = Vec::new();
    payload.extend_from_slice(&(rec.label.len() as u32).to_le_bytes());
    payload.extend_from_slice(rec.label.as_bytes());
    payload.extend_from_slice(&rec.inferred.to_le_bytes());
    payload.extend_from_slice(&(rec.terms.len() as u32).to_le_bytes());
    for t in &rec.terms {
        codec::encode_term(&mut payload, t);
    }
    payload.extend_from_slice(&(rec.triples.len() as u64).to_le_bytes());
    for &[s, p, o] in &rec.triples {
        payload.extend_from_slice(&s.to_le_bytes());
        payload.extend_from_slice(&p.to_le_bytes());
        payload.extend_from_slice(&o.to_le_bytes());
    }
    let mut out = Vec::with_capacity(payload.len() + 16);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv_bytes(FNV_OFFSET, &payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

fn decode_payload(payload: &[u8]) -> Result<WalRecord, StoreError> {
    let mut r = codec::Reader::new(payload, "wal record");
    let label = r.str()?.to_string();
    let inferred = r.u64()?;
    let n_terms = r.u32()? as usize;
    let mut terms = Vec::with_capacity(n_terms.min(payload.len()));
    for _ in 0..n_terms {
        terms.push(codec::decode_term(&mut r)?);
    }
    let n_triples = r.u64()? as usize;
    if n_triples.checked_mul(12) != Some(r.remaining()) {
        return Err(StoreError::Corrupt {
            what: "wal record: triple section length mismatch".to_string(),
        });
    }
    let mut triples = Vec::with_capacity(n_triples);
    for _ in 0..n_triples {
        triples.push([r.u32()?, r.u32()?, r.u32()?]);
    }
    Ok(WalRecord {
        label,
        inferred,
        terms,
        triples,
    })
}

/// Result of scanning a log: the replayable prefix plus, when the tail
/// was torn or flipped, the typed error describing the damage and the
/// byte length of the intact prefix to truncate back to.
#[derive(Debug)]
pub struct WalReplay {
    /// Records of the intact prefix, oldest first.
    pub records: Vec<WalRecord>,
    /// Byte length of the intact prefix (header included). Recovery
    /// truncates the file here before appending again.
    pub valid_len: u64,
    /// The damage found past `valid_len`, if any.
    pub truncated: Option<StoreError>,
}

/// Scans serialized log bytes. Wrong magic or version is a hard error;
/// a damaged *tail* (torn record header, short payload, checksum
/// mismatch) ends the scan and is reported in `truncated` — everything
/// before it replays normally, which is the crash-recovery contract.
pub fn parse_wal(bytes: &[u8]) -> Result<WalReplay, StoreError> {
    if bytes.len() < HEADER_LEN {
        return Ok(WalReplay {
            records: Vec::new(),
            valid_len: 0,
            truncated: Some(StoreError::Truncated { what: "wal header" }),
        });
    }
    if &bytes[..7] != MAGIC {
        return Err(StoreError::BadMagic {
            path: std::path::PathBuf::from("wal.feo"),
        });
    }
    if bytes[7] != FORMAT_VERSION {
        return Err(StoreError::UnsupportedVersion {
            path: std::path::PathBuf::from("wal.feo"),
            found: bytes[7],
        });
    }
    let mut records = Vec::new();
    let mut at = HEADER_LEN;
    loop {
        if at == bytes.len() {
            return Ok(WalReplay {
                records,
                valid_len: at as u64,
                truncated: None,
            });
        }
        let tear = |what: &'static str| StoreError::Truncated { what };
        if bytes.len() - at < 16 {
            return Ok(WalReplay {
                records,
                valid_len: at as u64,
                truncated: Some(tear("wal record header")),
            });
        }
        let len = u64::from_le_bytes([
            bytes[at],
            bytes[at + 1],
            bytes[at + 2],
            bytes[at + 3],
            bytes[at + 4],
            bytes[at + 5],
            bytes[at + 6],
            bytes[at + 7],
        ]) as usize;
        let stored_fnv = u64::from_le_bytes([
            bytes[at + 8],
            bytes[at + 9],
            bytes[at + 10],
            bytes[at + 11],
            bytes[at + 12],
            bytes[at + 13],
            bytes[at + 14],
            bytes[at + 15],
        ]);
        let body_at = at + 16;
        if len > bytes.len() - body_at {
            return Ok(WalReplay {
                records,
                valid_len: at as u64,
                truncated: Some(tear("wal record payload")),
            });
        }
        let payload = &bytes[body_at..body_at + len];
        if fnv_bytes(FNV_OFFSET, payload) != stored_fnv {
            return Ok(WalReplay {
                records,
                valid_len: at as u64,
                truncated: Some(StoreError::ChecksumMismatch { what: "wal record" }),
            });
        }
        // Checksummed but undecodable is not a torn write — hard error.
        records.push(decode_payload(payload)?);
        at = body_at + len;
    }
}

/// Reads and scans a log file.
pub fn read_wal(path: &Path) -> Result<WalReplay, StoreError> {
    let bytes = std::fs::read(path).map_err(|e| StoreError::io("read", path, e))?;
    parse_wal(&bytes)
}

/// Appends one record to the log, fsyncing before returning — once
/// this succeeds, the commit survives a crash.
pub fn append_record(path: &Path, rec: &WalRecord) -> Result<(), StoreError> {
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(path)
        .map_err(|e| StoreError::io("open", path, e))?;
    f.write_all(&encode_record(rec))
        .map_err(|e| StoreError::io("append", path, e))?;
    f.sync_all().map_err(|e| StoreError::io("fsync", path, e))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(label: &str, k: u32) -> WalRecord {
        WalRecord {
            label: label.to_string(),
            inferred: u64::from(k),
            terms: vec![Term::iri(format!("http://e/t{k}")), Term::simple("x")],
            triples: vec![[k, k + 1, k + 2], [k + 3, 0, 1]],
        }
    }

    fn log_bytes(recs: &[WalRecord]) -> Vec<u8> {
        let mut out = header().to_vec();
        for r in recs {
            out.extend_from_slice(&encode_record(r));
        }
        out
    }

    #[test]
    fn records_round_trip() {
        let recs = vec![rec("population", 0), rec("explain", 5)];
        let replay = parse_wal(&log_bytes(&recs)).unwrap();
        assert_eq!(replay.records, recs);
        assert!(replay.truncated.is_none());
        assert_eq!(replay.valid_len as usize, log_bytes(&recs).len());
        // Typed-id view matches the raw triples.
        assert_eq!(replay.records[0].id_triples().len(), 2);
        assert_eq!(replay.records[0].id_triples()[0][0].index(), 0);
    }

    #[test]
    fn torn_tail_replays_intact_prefix() {
        let recs = vec![rec("a", 1), rec("b", 2)];
        let full = log_bytes(&recs);
        let first_len = log_bytes(&recs[..1]).len();
        // Tear at every byte inside the second record.
        for cut in first_len + 1..full.len() {
            let replay = parse_wal(&full[..cut]).unwrap();
            assert_eq!(replay.records, recs[..1], "cut at {cut}");
            assert_eq!(replay.valid_len as usize, first_len);
            assert!(replay.truncated.is_some());
        }
        // A bit flip in the second record's payload also stops there.
        let mut flipped = full.clone();
        let n = flipped.len();
        flipped[n - 1] ^= 0x01;
        let replay = parse_wal(&flipped).unwrap();
        assert_eq!(replay.records, recs[..1]);
        assert!(matches!(
            replay.truncated,
            Some(StoreError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn bad_header_is_a_hard_error() {
        let mut bytes = log_bytes(&[rec("a", 1)]);
        bytes[0] = b'X';
        assert!(matches!(
            parse_wal(&bytes),
            Err(StoreError::BadMagic { .. })
        ));
        let mut bytes = log_bytes(&[rec("a", 1)]);
        bytes[7] = 9;
        assert!(matches!(
            parse_wal(&bytes),
            Err(StoreError::UnsupportedVersion { found: 9, .. })
        ));
        // An empty / sub-header file is recoverable, not fatal.
        let replay = parse_wal(&[]).unwrap();
        assert!(replay.records.is_empty());
        assert_eq!(replay.valid_len, 0);
        assert!(replay.truncated.is_some());
    }
}
