//! Term interning: maps [`Term`]s to dense `u32` ids.
//!
//! All graph storage and all SPARQL/reasoner joins operate on `TermId`s, so
//! equality is a word compare and triples fit in 12 bytes. Ids are stable
//! for the lifetime of the interner (terms are never evicted), which lets
//! downstream layers cache vocabulary ids.

use std::collections::HashMap;

use crate::term::Term;

/// A dense handle for an interned [`Term`]. Only meaningful together with
/// the [`Interner`] (or [`crate::graph::Graph`]) that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub(crate) u32);

impl TermId {
    /// The raw index. Exposed for dense side-tables keyed by term id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A bidirectional Term ↔ TermId dictionary.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    terms: Vec<Term>,
    ids: HashMap<Term, TermId>,
}

impl Interner {
    pub fn new() -> Self {
        Interner::default()
    }

    /// Interns a term, returning its id. Idempotent.
    pub fn intern(&mut self, term: &Term) -> TermId {
        if let Some(&id) = self.ids.get(term) {
            return id;
        }
        let id = TermId(u32::try_from(self.terms.len()).expect("interner overflow: >4G terms"));
        self.terms.push(term.clone());
        self.ids.insert(term.clone(), id);
        id
    }

    /// Interns an owned term without cloning when it is new.
    pub fn intern_owned(&mut self, term: Term) -> TermId {
        if let Some(&id) = self.ids.get(&term) {
            return id;
        }
        let id = TermId(u32::try_from(self.terms.len()).expect("interner overflow: >4G terms"));
        self.terms.push(term.clone());
        self.ids.insert(term, id);
        id
    }

    /// Looks up an already-interned term.
    pub fn lookup(&self, term: &Term) -> Option<TermId> {
        self.ids.get(term).copied()
    }

    /// Resolves an id back to its term.
    ///
    /// # Panics
    /// Panics if `id` did not come from this interner.
    pub fn term(&self, id: TermId) -> &Term {
        &self.terms[id.0 as usize]
    }

    /// Number of distinct interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterates over all (id, term) pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &Term)> {
        self.terms
            .iter()
            .enumerate()
            .map(|(i, t)| (TermId(i as u32), t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{Literal, Term};

    #[test]
    fn interning_is_idempotent() {
        let mut d = Interner::new();
        let a1 = d.intern(&Term::iri("http://e/a"));
        let a2 = d.intern(&Term::iri("http://e/a"));
        let b = d.intern(&Term::iri("http://e/b"));
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn lookup_and_resolve_round_trip() {
        let mut d = Interner::new();
        let t = Term::Literal(Literal::lang("bonjour", "fr"));
        let id = d.intern(&t);
        assert_eq!(d.lookup(&t), Some(id));
        assert_eq!(d.term(id), &t);
        assert_eq!(d.lookup(&Term::simple("bonjour")), None);
    }

    #[test]
    fn distinct_literal_forms_get_distinct_ids() {
        let mut d = Interner::new();
        let plain = d.intern(&Term::simple("42"));
        let typed = d.intern(&Term::integer(42));
        assert_ne!(plain, typed);
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut d = Interner::new();
        let ids: Vec<_> = ["a", "b", "c"]
            .iter()
            .map(|l| d.intern(&Term::iri(format!("http://e/{l}"))))
            .collect();
        let seen: Vec<_> = d.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, seen);
    }
}
