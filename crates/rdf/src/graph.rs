//! An in-memory indexed triple store.
//!
//! Triples are stored as interned-id triples in three B-tree orderings
//! (SPO, POS, OSP) so that every triple pattern with at least one bound
//! position resolves to a contiguous range scan. This mirrors the classic
//! Hexastore layout trimmed to the three orders sufficient for the access
//! paths our SPARQL evaluator and reasoner use.

use std::collections::BTreeSet;

use crate::intern::{Interner, TermId};
use crate::run::{BTreeRun, RunSpec};
use crate::stats::GraphStats;
use crate::term::{Iri, Term, Triple};
use crate::vocab::rdf;

/// An interned triple: `[subject, predicate, object]` ids.
pub type IdTriple = [TermId; 3];

/// An in-memory RDF graph with its own term dictionary.
#[derive(Debug, Default, Clone)]
pub struct Graph {
    dict: Interner,
    spo: BTreeSet<[u32; 3]>,
    pos: BTreeSet<[u32; 3]>,
    osp: BTreeSet<[u32; 3]>,
    next_bnode: u64,
    stats: GraphStats,
}

impl Graph {
    pub fn new() -> Self {
        Graph::default()
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.spo.len()
    }

    pub fn is_empty(&self) -> bool {
        self.spo.is_empty()
    }

    /// Number of distinct terms in the dictionary.
    pub fn term_count(&self) -> usize {
        self.dict.len()
    }

    /// Incrementally-maintained statistics (see [`GraphStats`]).
    pub fn stats(&self) -> &GraphStats {
        &self.stats
    }

    // ---- dictionary access ----------------------------------------------

    /// Interns a term into this graph's dictionary.
    pub fn intern(&mut self, term: &Term) -> TermId {
        let before = self.dict.len();
        let id = self.dict.intern(term);
        if self.dict.len() > before {
            self.stats.note_new_term(id, term);
        }
        id
    }

    /// Interns an owned term without cloning when it is new.
    fn intern_owned(&mut self, term: Term) -> TermId {
        let before = self.dict.len();
        let id = self.dict.intern_owned(term);
        if self.dict.len() > before {
            self.stats.note_new_term(id, self.dict.term(id));
        }
        id
    }

    /// Interns an IRI string.
    pub fn intern_iri(&mut self, iri: &str) -> TermId {
        self.intern_owned(Term::iri(iri))
    }

    /// Looks up a term without interning it.
    pub fn lookup(&self, term: &Term) -> Option<TermId> {
        self.dict.lookup(term)
    }

    /// Looks up an IRI string without interning it.
    pub fn lookup_iri(&self, iri: &str) -> Option<TermId> {
        self.dict.lookup(&Term::iri(iri))
    }

    /// Resolves an id back to its term.
    pub fn term(&self, id: TermId) -> &Term {
        self.dict.term(id)
    }

    /// Pretty form of a term for messages: local name for IRIs, lexical
    /// form for literals, `_:label` for blank nodes.
    pub fn term_name(&self, id: TermId) -> String {
        match self.term(id) {
            Term::Iri(i) => i.local_name().to_string(),
            Term::BlankNode(b) => format!("_:{}", b.as_str()),
            Term::Literal(l) => l.lexical_form().to_string(),
        }
    }

    /// Iterates all `(id, term)` pairs of the dictionary in id order.
    /// Ids are dense, so this enumerates every id the graph has ever
    /// handed out (terms are never evicted).
    pub fn iter_terms(&self) -> impl Iterator<Item = (TermId, &Term)> {
        self.dict.iter()
    }

    /// A fresh blank node unique within this graph.
    pub fn fresh_bnode(&mut self) -> TermId {
        loop {
            let label = format!("g{}", self.next_bnode);
            self.next_bnode += 1;
            let t = Term::bnode(label);
            if self.dict.lookup(&t).is_none() {
                return self.intern_owned(t);
            }
        }
    }

    // ---- mutation --------------------------------------------------------

    /// Inserts an interned triple. Returns true when newly added.
    pub fn insert_ids(&mut self, s: TermId, p: TermId, o: TermId) -> bool {
        if !self.spo.insert([s.0, p.0, o.0]) {
            return false;
        }
        // First-seen flags for the stats, read off the indexes before
        // the secondary inserts: (s,p) pair is new iff the SPO range for
        // it holds only the triple just added; likewise (p,o) in POS.
        let new_sp = self
            .spo
            .range([s.0, p.0, 0]..=[s.0, p.0, u32::MAX])
            .nth(1)
            .is_none();
        let new_po = self
            .pos
            .range([p.0, o.0, 0]..=[p.0, o.0, u32::MAX])
            .next()
            .is_none();
        self.pos.insert([p.0, o.0, s.0]);
        self.osp.insert([o.0, s.0, p.0]);
        self.stats.record_insert(s, p, o, new_sp, new_po);
        true
    }

    /// Interns the terms of `triple` and inserts it.
    pub fn insert(&mut self, triple: &Triple) -> bool {
        let s = self.intern(&triple.subject);
        let p = self.intern(&triple.predicate);
        let o = self.intern(&triple.object);
        self.insert_ids(s, p, o)
    }

    /// Convenience: insert three terms.
    pub fn insert_terms(
        &mut self,
        s: impl Into<Term>,
        p: impl Into<Term>,
        o: impl Into<Term>,
    ) -> bool {
        let s = self.intern_owned(s.into());
        let p = self.intern_owned(p.into());
        let o = self.intern_owned(o.into());
        self.insert_ids(s, p, o)
    }

    /// Convenience: insert a triple of IRI strings.
    pub fn insert_iris(&mut self, s: &str, p: &str, o: &str) -> bool {
        self.insert_terms(Iri::new(s), Iri::new(p), Iri::new(o))
    }

    /// Removes an interned triple. Returns true when it was present.
    pub fn remove_ids(&mut self, s: TermId, p: TermId, o: TermId) -> bool {
        let removed = self.spo.remove(&[s.0, p.0, o.0]);
        if removed {
            self.pos.remove(&[p.0, o.0, s.0]);
            self.osp.remove(&[o.0, s.0, p.0]);
            let last_sp = self
                .spo
                .range([s.0, p.0, 0]..=[s.0, p.0, u32::MAX])
                .next()
                .is_none();
            let last_po = self
                .pos
                .range([p.0, o.0, 0]..=[p.0, o.0, u32::MAX])
                .next()
                .is_none();
            self.stats.record_remove(s, p, o, last_sp, last_po);
        }
        removed
    }

    /// Removes a term-level triple if present.
    pub fn remove(&mut self, triple: &Triple) -> bool {
        match (
            self.dict.lookup(&triple.subject),
            self.dict.lookup(&triple.predicate),
            self.dict.lookup(&triple.object),
        ) {
            (Some(s), Some(p), Some(o)) => self.remove_ids(s, p, o),
            _ => false,
        }
    }

    /// Copies every triple of `other` into `self` (dictionaries may differ;
    /// terms are re-interned).
    pub fn extend_from(&mut self, other: &Graph) {
        for t in other.iter_triples() {
            self.insert(&t);
        }
    }

    // ---- queries ---------------------------------------------------------

    /// Does the graph contain this interned triple?
    pub fn contains_ids(&self, s: TermId, p: TermId, o: TermId) -> bool {
        self.spo.contains(&[s.0, p.0, o.0])
    }

    /// Does the graph contain this term-level triple?
    pub fn contains(&self, triple: &Triple) -> bool {
        match (
            self.dict.lookup(&triple.subject),
            self.dict.lookup(&triple.predicate),
            self.dict.lookup(&triple.object),
        ) {
            (Some(s), Some(p), Some(o)) => self.contains_ids(s, p, o),
            _ => false,
        }
    }

    /// All triples matching a pattern of optionally-bound positions, as
    /// interned id triples. Each returned triple is `[s, p, o]`.
    pub fn match_pattern(
        &self,
        s: Option<TermId>,
        p: Option<TermId>,
        o: Option<TermId>,
    ) -> Vec<IdTriple> {
        fn range3<'a>(
            set: &'a BTreeSet<[u32; 3]>,
            a: Option<u32>,
            b: Option<u32>,
        ) -> impl Iterator<Item = &'a [u32; 3]> + 'a {
            let (lo, hi) = match (a, b) {
                (Some(a), Some(b)) => ([a, b, 0], [a, b, u32::MAX]),
                (Some(a), None) => ([a, 0, 0], [a, u32::MAX, u32::MAX]),
                (None, _) => ([0, 0, 0], [u32::MAX, u32::MAX, u32::MAX]),
            };
            set.range(lo..=hi)
        }

        let id = |x: TermId| x.0;
        match (s.map(id), p.map(id), o.map(id)) {
            (Some(s), Some(p), Some(o)) => {
                if self.spo.contains(&[s, p, o]) {
                    vec![[TermId(s), TermId(p), TermId(o)]]
                } else {
                    Vec::new()
                }
            }
            (Some(s), p, None) => range3(&self.spo, Some(s), p)
                .map(|&[s, p, o]| [TermId(s), TermId(p), TermId(o)])
                .collect(),
            (None, Some(p), o) => range3(&self.pos, Some(p), o)
                .map(|&[p, o, s]| [TermId(s), TermId(p), TermId(o)])
                .collect(),
            (Some(s), None, Some(o)) => range3(&self.osp, Some(o), Some(s))
                .map(|&[o, s, p]| [TermId(s), TermId(p), TermId(o)])
                .collect(),
            (None, None, Some(o)) => range3(&self.osp, Some(o), None)
                .map(|&[o, s, p]| [TermId(s), TermId(p), TermId(o)])
                .collect(),
            (None, None, None) => self
                .spo
                .iter()
                .map(|&[s, p, o]| [TermId(s), TermId(p), TermId(o)])
                .collect(),
        }
    }

    /// Objects of all `s p ?o` triples.
    pub fn objects(&self, s: TermId, p: TermId) -> Vec<TermId> {
        self.match_pattern(Some(s), Some(p), None)
            .into_iter()
            .map(|t| t[2])
            .collect()
    }

    /// The first object of `s p ?o`, if any (deterministic: lowest id).
    pub fn object(&self, s: TermId, p: TermId) -> Option<TermId> {
        self.match_pattern(Some(s), Some(p), None)
            .first()
            .map(|t| t[2])
    }

    /// Subjects of all `?s p o` triples.
    pub fn subjects(&self, p: TermId, o: TermId) -> Vec<TermId> {
        self.match_pattern(None, Some(p), Some(o))
            .into_iter()
            .map(|t| t[0])
            .collect()
    }

    /// All subjects with `rdf:type` `class_id`.
    pub fn instances_of(&self, class_id: TermId) -> Vec<TermId> {
        match self.lookup_iri(rdf::TYPE) {
            Some(ty) => self.subjects(ty, class_id),
            None => Vec::new(),
        }
    }

    /// Sorted, seekable cursor over the free position of `spec`,
    /// streamed straight from the index permutation that stores it
    /// (`pos` for subjects, `spo` for objects) — no materialization.
    pub fn index_run(&self, spec: RunSpec) -> BTreeRun<'_> {
        match spec {
            RunSpec::Subjects { p, o } => BTreeRun::new(&self.pos, p.0, o.0),
            RunSpec::Objects { s, p } => BTreeRun::new(&self.spo, s.0, p.0),
        }
    }

    /// Iterates all triples as interned ids in SPO order.
    pub fn iter_ids(&self) -> impl Iterator<Item = IdTriple> + '_ {
        self.spo
            .iter()
            .map(|&[s, p, o]| [TermId(s), TermId(p), TermId(o)])
    }

    /// Iterates all triples as term-level [`Triple`]s (clones terms).
    pub fn iter_triples(&self) -> impl Iterator<Item = Triple> + '_ {
        self.iter_ids().map(move |[s, p, o]| Triple {
            subject: self.term(s).clone(),
            predicate: self.term(p).clone(),
            object: self.term(o).clone(),
        })
    }

    /// Reads an RDF collection (`rdf:first`/`rdf:rest` list) rooted at
    /// `head`, returning its members in order. Returns `None` when the node
    /// is not a well-formed list.
    pub fn read_list(&self, head: TermId) -> Option<Vec<TermId>> {
        let first = self.lookup_iri(rdf::FIRST)?;
        let rest = self.lookup_iri(rdf::REST)?;
        let nil = self.lookup_iri(rdf::NIL)?;
        let mut members = Vec::new();
        let mut node = head;
        let mut steps = 0usize;
        while node != nil {
            members.push(self.object(node, first)?);
            node = self.object(node, rest)?;
            steps += 1;
            if steps > self.len() + 1 {
                return None; // cyclic list
            }
        }
        Some(members)
    }

    /// Writes `items` as an RDF collection, returning the head node
    /// (`rdf:nil` for an empty list).
    pub fn write_list(&mut self, items: &[TermId]) -> TermId {
        let first = self.intern_iri(rdf::FIRST);
        let rest = self.intern_iri(rdf::REST);
        let nil = self.intern_iri(rdf::NIL);
        let mut head = nil;
        for &item in items.iter().rev() {
            let node = self.fresh_bnode();
            self.insert_ids(node, first, item);
            self.insert_ids(node, rest, head);
            head = node;
        }
        head
    }

    /// Checks the three indexes agree; used by tests and debug assertions.
    pub fn check_index_coherence(&self) -> bool {
        if self.spo.len() != self.pos.len() || self.spo.len() != self.osp.len() {
            return false;
        }
        self.spo
            .iter()
            .all(|&[s, p, o]| self.pos.contains(&[p, o, s]) && self.osp.contains(&[o, s, p]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    fn g3() -> Graph {
        let mut g = Graph::new();
        g.insert_iris("http://e/a", "http://e/p", "http://e/b");
        g.insert_iris("http://e/a", "http://e/p", "http://e/c");
        g.insert_iris("http://e/b", "http://e/q", "http://e/c");
        g
    }

    #[test]
    fn insert_is_set_semantics() {
        let mut g = Graph::new();
        assert!(g.insert_iris("http://e/a", "http://e/p", "http://e/b"));
        assert!(!g.insert_iris("http://e/a", "http://e/p", "http://e/b"));
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn pattern_matching_all_shapes() {
        let g = g3();
        let a = g.lookup_iri("http://e/a").unwrap();
        let p = g.lookup_iri("http://e/p").unwrap();
        let q = g.lookup_iri("http://e/q").unwrap();
        let b = g.lookup_iri("http://e/b").unwrap();
        let c = g.lookup_iri("http://e/c").unwrap();

        assert_eq!(g.match_pattern(Some(a), Some(p), None).len(), 2);
        assert_eq!(g.match_pattern(Some(a), None, None).len(), 2);
        assert_eq!(g.match_pattern(None, Some(p), None).len(), 2);
        assert_eq!(g.match_pattern(None, Some(q), Some(c)).len(), 1);
        assert_eq!(g.match_pattern(None, None, Some(c)).len(), 2);
        assert_eq!(g.match_pattern(Some(a), None, Some(b)).len(), 1);
        assert_eq!(g.match_pattern(None, None, None).len(), 3);
        assert_eq!(g.match_pattern(Some(a), Some(q), Some(b)).len(), 0);
    }

    #[test]
    fn removal_updates_all_indexes() {
        let mut g = g3();
        let t = Triple::new(
            Term::iri("http://e/a"),
            Term::iri("http://e/p"),
            Term::iri("http://e/b"),
        );
        assert!(g.remove(&t));
        assert!(!g.remove(&t));
        assert_eq!(g.len(), 2);
        assert!(g.check_index_coherence());
        assert!(!g.contains(&t));
    }

    #[test]
    fn objects_and_subjects_helpers() {
        let g = g3();
        let a = g.lookup_iri("http://e/a").unwrap();
        let p = g.lookup_iri("http://e/p").unwrap();
        let c = g.lookup_iri("http://e/c").unwrap();
        assert_eq!(g.objects(a, p).len(), 2);
        assert_eq!(g.subjects(p, c), vec![a]);
    }

    #[test]
    fn list_round_trip() {
        let mut g = Graph::new();
        let items: Vec<_> = (0..5)
            .map(|i| g.intern_iri(&format!("http://e/i{i}")))
            .collect();
        let head = g.write_list(&items);
        assert_eq!(g.read_list(head), Some(items));
    }

    #[test]
    fn empty_list_is_nil() {
        let mut g = Graph::new();
        let head = g.write_list(&[]);
        assert_eq!(g.term(head), &Term::iri(rdf::NIL));
        assert_eq!(g.read_list(head), Some(vec![]));
    }

    #[test]
    fn fresh_bnodes_are_distinct() {
        let mut g = Graph::new();
        let b1 = g.fresh_bnode();
        let b2 = g.fresh_bnode();
        assert_ne!(b1, b2);
    }

    #[test]
    fn extend_from_reinterns() {
        let mut g1 = g3();
        let g2 = g3();
        g1.extend_from(&g2);
        assert_eq!(g1.len(), 3); // identical triples deduplicate
        let mut g4 = Graph::new();
        g4.insert_iris("http://e/x", "http://e/p", "http://e/y");
        g1.extend_from(&g4);
        assert_eq!(g1.len(), 4);
    }

    #[test]
    fn instances_of_uses_rdf_type() {
        let mut g = Graph::new();
        g.insert_iris("http://e/apple", rdf::TYPE, "http://e/Food");
        g.insert_iris("http://e/kale", rdf::TYPE, "http://e/Food");
        let food = g.lookup_iri("http://e/Food").unwrap();
        assert_eq!(g.instances_of(food).len(), 2);
    }
}
