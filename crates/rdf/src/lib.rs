//! # feo-rdf
//!
//! RDF 1.1 substrate for the FEO (Food Explanation Ontology) reproduction:
//! a term model, an interning dictionary, an indexed in-memory triple
//! store, and Turtle / N-Triples I/O.
//!
//! The paper this workspace reproduces ("Semantic Modeling for Food
//! Recommendation Explanations", ICDE 2021) assumes a standard semantic-web
//! stack. Rust lacks one, so this crate provides the storage layer every
//! other crate builds on:
//!
//! - [`term`] — IRIs, blank nodes, literals, triples;
//! - [`intern`] — Term ↔ dense-id dictionary;
//! - [`graph`] — SPO/POS/OSP-indexed triple store with pattern matching
//!   and RDF collection helpers;
//! - [`turtle`] / [`ntriples`] — parsers and serializers;
//! - [`vocab`] — RDF/RDFS/OWL/XSD vocabulary constants.
//!
//! ## Example
//!
//! ```
//! use feo_rdf::graph::Graph;
//! use feo_rdf::turtle::parse_turtle_into;
//!
//! let mut g = Graph::new();
//! parse_turtle_into(
//!     "@prefix feo: <https://purl.org/heals/feo#> .
//!      feo:Autumn a feo:SeasonCharacteristic .",
//!     &mut g,
//!     &feo_rdf::ParseOptions::default(),
//! ).unwrap();
//! assert_eq!(g.len(), 1);
//! ```

pub mod disk;
pub mod governor;
pub mod graph;
pub mod intern;
pub mod ledger;
pub mod ntriples;
pub mod pool;
pub mod run;
pub mod stats;
pub mod term;
pub mod turtle;
pub mod view;
pub mod vocab;

pub use disk::{DiskStore, OpenOptions, OpenedStore, Segment, StoreError, WalRecord};
pub use governor::{Budget, CancelFlag, Exhausted, Guard, Resource};
pub use graph::{Graph, IdTriple};
pub use intern::{Interner, TermId};
pub use ledger::{BaseStore, BranchChain, EpochId, Layer, Ledger, LedgerView};
pub use pool::Parallelism;
pub use run::{MergeRun, PairRun, RunCursor, RunSpec, SliceRun, VecRun};
pub use stats::{GraphStats, PredicateStats};
pub use term::{BlankNode, Iri, Literal, Term, Triple};
pub use view::{GraphStore, GraphView, Overlay};

use std::fmt;
use turtle::TurtleError;

/// Options accepted by the parser entry points
/// ([`turtle::parse_turtle`], [`ntriples::parse_ntriples`] and their
/// `_into` forms). `Default` parses unguarded.
#[derive(Debug, Clone, Copy, Default)]
pub struct ParseOptions<'a> {
    /// Execution governor: when set, the input-size cap is checked up
    /// front and the deadline / cancellation flag during parsing. A
    /// tripped budget surfaces as [`RdfError::Exhausted`].
    pub guard: Option<&'a Guard>,
}

impl<'a> ParseOptions<'a> {
    /// Options parsing under `guard`.
    pub fn guarded(guard: &'a Guard) -> Self {
        ParseOptions { guard: Some(guard) }
    }
}

/// Error surface of the guarded parser entry points: either a syntax
/// error with its 1-based line/column, or a tripped execution budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RdfError {
    /// Malformed input; carries the parser's line/column location.
    Syntax(TurtleError),
    /// An execution budget tripped before parsing finished.
    Exhausted(Exhausted),
    /// A persistent-store failure: I/O, corruption, or an incompatible
    /// on-disk format version.
    Store(StoreError),
}

impl fmt::Display for RdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RdfError::Syntax(e) => e.fmt(f),
            RdfError::Exhausted(e) => e.fmt(f),
            RdfError::Store(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for RdfError {}

impl From<TurtleError> for RdfError {
    fn from(e: TurtleError) -> Self {
        RdfError::Syntax(e)
    }
}

impl From<Exhausted> for RdfError {
    fn from(e: Exhausted) -> Self {
        RdfError::Exhausted(e)
    }
}

impl From<StoreError> for RdfError {
    fn from(e: StoreError) -> Self {
        RdfError::Store(e)
    }
}
