//! Append-only epoch ledger: a closed base graph plus a chain of
//! committed, immutable delta [`Layer`]s.
//!
//! Where [`Overlay`](crate::view::Overlay) is a *private, mutable*
//! write layer for one in-flight session, a [`Layer`] is what that
//! delta becomes once committed: frozen term spill, frozen sorted
//! triple indexes, frozen statistics, and a tamper-evidence hash
//! chained from its parent. The [`Ledger`] owns the base (epoch 0) and
//! the committed chain; a [`LedgerView`] stacks the base plus any
//! prefix of the chain, so *every historical epoch stays addressable* —
//! nothing is ever absorbed away.
//!
//! Id-space contract (same as `Overlay`): layer `k`'s spill ids start
//! at the total term count of its prefix, so id triples recorded inside
//! a session — including reasoner derivation records — stay valid
//! verbatim after the session's delta is committed as a layer.
//!
//! Branches are [`BranchChain`]s: a fork epoch on the main chain plus a
//! private chain of layers. A branch view shares the base and the
//! forked prefix by reference — forking copies nothing.

use std::collections::HashMap;
use std::sync::Arc;

use crate::disk::Segment;
use crate::graph::{Graph, IdTriple};
use crate::intern::TermId;
use crate::run::{MergeRun, RunCursor, RunSpec, SliceRun};
use crate::stats::{GraphStats, PredicateStats};
use crate::term::{Term, Triple};
use crate::view::GraphView;
use crate::vocab::rdf;

/// Position on a commit chain. Epoch 0 is the closed base; epoch `n`
/// stacks the first `n` committed layers on top of it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EpochId(pub u64);

impl std::fmt::Display for EpochId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

// ---- FNV-1a hashing (hand-rolled: the chain must not depend on the
// std hasher's per-process seed) --------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn fnv_u64(h: u64, v: u64) -> u64 {
    fnv_bytes(h, &v.to_le_bytes())
}

fn fnv_triple(h: u64, [s, p, o]: IdTriple) -> u64 {
    fnv_u64(
        fnv_u64(fnv_u64(h, u64::from(s.0)), u64::from(p.0)),
        u64::from(o.0),
    )
}

fn fnv_term(h: u64, term: &Term) -> u64 {
    // Debug rendering is deterministic and distinguishes term kinds.
    fnv_bytes(h, format!("{term:?}").as_bytes())
}

// ---- sorted-slice range scans ----------------------------------------

/// Matches `[a, b, *]` / `[a, *, *]` / `[*, *, *]` prefixes of a sorted
/// permuted index, the slice dual of `Overlay`'s BTree range scans.
fn scan2(sorted: &[[u32; 3]], a: Option<u32>, b: Option<u32>) -> &[[u32; 3]] {
    let (lo, hi) = match (a, b) {
        (Some(a), Some(b)) => ([a, b, 0], [a, b, u32::MAX]),
        (Some(a), None) => ([a, 0, 0], [a, u32::MAX, u32::MAX]),
        (None, _) => return sorted,
    };
    let start = sorted.partition_point(|t| *t < lo);
    let end = sorted.partition_point(|t| *t <= hi);
    &sorted[start..end]
}

// ---- Layer -----------------------------------------------------------

/// One committed, immutable delta: the intern spill and triples a
/// session added, with their statistics and a chained content hash.
#[derive(Debug)]
pub struct Layer {
    /// First spill id — the total term count of this layer's prefix.
    term_base: u32,
    /// Spill dictionary: term `i` holds id `term_base + i`.
    terms: Vec<Term>,
    term_ids: HashMap<Term, TermId>,
    /// Delta triples in three sorted permutations (`[s,p,o]`,
    /// `[p,o,s]`, `[o,s,p]`), mirroring `Graph`'s indexes.
    spo: Vec<[u32; 3]>,
    pos: Vec<[u32; 3]>,
    osp: Vec<[u32; 3]>,
    /// Counters over this delta only; views sum them across the stack.
    stats: GraphStats,
    /// FNV-1a over the parent epoch's hash, the spill, and the triples.
    hash: u64,
}

impl Layer {
    /// Freezes a session delta into a layer. `terms` and `delta` follow
    /// the `Overlay::into_delta` contract: spill term `i` has id
    /// `term_base + i`, and `delta` is in SPO order.
    fn new(
        term_base: u32,
        parent_hash: u64,
        rdf_type: Option<TermId>,
        terms: Vec<Term>,
        delta: Vec<IdTriple>,
    ) -> Layer {
        let mut term_ids = HashMap::with_capacity(terms.len());
        let mut stats = GraphStats::new();
        stats.set_rdf_type_id(rdf_type);
        for (i, t) in terms.iter().enumerate() {
            let id = TermId(term_base + i as u32);
            term_ids.insert(t.clone(), id);
            stats.note_new_term(id, t);
        }

        let mut spo: Vec<[u32; 3]> = delta.iter().map(|&[s, p, o]| [s.0, p.0, o.0]).collect();
        spo.sort_unstable();
        spo.dedup();
        let mut pos: Vec<[u32; 3]> = spo.iter().map(|&[s, p, o]| [p, o, s]).collect();
        pos.sort_unstable();
        let mut osp: Vec<[u32; 3]> = spo.iter().map(|&[s, p, o]| [o, s, p]).collect();
        osp.sort_unstable();

        // Replay the delta into the stats exactly as live inserts would.
        let mut seen_sp: HashMap<[u32; 2], ()> = HashMap::new();
        let mut seen_po: HashMap<[u32; 2], ()> = HashMap::new();
        for &[s, p, o] in &spo {
            let new_sp = seen_sp.insert([s, p], ()).is_none();
            let new_po = seen_po.insert([p, o], ()).is_none();
            stats.record_insert(TermId(s), TermId(p), TermId(o), new_sp, new_po);
        }

        let mut hash = fnv_u64(parent_hash, u64::from(term_base));
        for t in &terms {
            hash = fnv_term(hash, t);
        }
        for &[s, p, o] in &spo {
            hash = fnv_triple(hash, [TermId(s), TermId(p), TermId(o)]);
        }

        Layer {
            term_base,
            terms,
            term_ids,
            spo,
            pos,
            osp,
            stats,
            hash,
        }
    }

    /// Number of delta triples in this layer.
    pub fn len(&self) -> usize {
        self.spo.len()
    }

    pub fn is_empty(&self) -> bool {
        self.spo.is_empty()
    }

    /// Number of terms this layer spilled into the dictionary.
    pub fn term_len(&self) -> usize {
        self.terms.len()
    }

    /// The chained tamper-evidence hash of this layer.
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// First spill id of this layer.
    pub fn term_base(&self) -> u32 {
        self.term_base
    }

    fn contains(&self, s: TermId, p: TermId, o: TermId) -> bool {
        self.spo.binary_search(&[s.0, p.0, o.0]).is_ok()
    }

    fn matches(&self, s: Option<TermId>, p: Option<TermId>, o: Option<TermId>) -> Vec<IdTriple> {
        let id = |x: TermId| x.0;
        match (s.map(id), p.map(id), o.map(id)) {
            (Some(s), Some(p), Some(o)) => {
                if self.contains(TermId(s), TermId(p), TermId(o)) {
                    vec![[TermId(s), TermId(p), TermId(o)]]
                } else {
                    Vec::new()
                }
            }
            (Some(s), p, None) => scan2(&self.spo, Some(s), p)
                .iter()
                .map(|&[s, p, o]| [TermId(s), TermId(p), TermId(o)])
                .collect(),
            (None, Some(p), o) => scan2(&self.pos, Some(p), o)
                .iter()
                .map(|&[p, o, s]| [TermId(s), TermId(p), TermId(o)])
                .collect(),
            (Some(s), None, Some(o)) => scan2(&self.osp, Some(o), Some(s))
                .iter()
                .map(|&[o, s, p]| [TermId(s), TermId(p), TermId(o)])
                .collect(),
            (None, None, Some(o)) => scan2(&self.osp, Some(o), None)
                .iter()
                .map(|&[o, s, p]| [TermId(s), TermId(p), TermId(o)])
                .collect(),
            (None, None, None) => self
                .spo
                .iter()
                .map(|&[s, p, o]| [TermId(s), TermId(p), TermId(o)])
                .collect(),
        }
    }

    fn iter_ids(&self) -> impl Iterator<Item = IdTriple> + '_ {
        self.spo
            .iter()
            .map(|&[s, p, o]| [TermId(s), TermId(p), TermId(o)])
    }

    /// Sorted cursor over this layer's run for `spec` — a borrow of the
    /// frozen permutation vectors, no copying.
    fn run(&self, spec: RunSpec) -> SliceRun<'_> {
        match spec {
            RunSpec::Subjects { p, o } => SliceRun::new(scan2(&self.pos, Some(p.0), Some(o.0))),
            RunSpec::Objects { s, p } => SliceRun::new(scan2(&self.spo, Some(s.0), Some(p.0))),
        }
    }

    /// This layer's delta statistics.
    pub fn stats(&self) -> &GraphStats {
        &self.stats
    }

    /// The spill dictionary in id order (term `i` has id
    /// `term_base() + i`) — what the WAL persists per commit.
    pub fn spill_terms(&self) -> &[Term] {
        &self.terms
    }

    /// The delta triples in SPO order as raw ids — what the WAL
    /// persists per commit.
    pub fn spo_raw(&self) -> &[[u32; 3]] {
        &self.spo
    }
}

// ---- BaseStore -------------------------------------------------------

/// The epoch-0 graph of a ledger: either the in-memory [`Graph`] the
/// engine materialized this process, or a memory-mapped [`Segment`]
/// reopened from disk. Both expose identical dense id spaces and
/// identical SPO-sorted scans, so every layer, view, and derivation
/// record works unchanged over either arm.
// One BaseStore exists per ledger (never in a collection), so the
// Mem/Disk size disparity costs nothing; boxing the graph would add a
// pointer chase to every hot-path scan dispatch instead.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum BaseStore {
    Mem(Graph),
    Disk(Arc<Segment>),
}

impl BaseStore {
    pub fn len(&self) -> usize {
        match self {
            BaseStore::Mem(g) => g.len(),
            BaseStore::Disk(s) => GraphView::len(&**s),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn term_count(&self) -> usize {
        match self {
            BaseStore::Mem(g) => g.term_count(),
            BaseStore::Disk(s) => GraphView::term_count(&**s),
        }
    }

    /// The maintained statistics (persisted ones, for a segment).
    pub fn stats(&self) -> &GraphStats {
        match self {
            BaseStore::Mem(g) => g.stats(),
            BaseStore::Disk(s) => s.stats(),
        }
    }

    /// The in-memory graph, when this base is one.
    pub fn as_graph(&self) -> Option<&Graph> {
        match self {
            BaseStore::Mem(g) => Some(g),
            BaseStore::Disk(_) => None,
        }
    }

    /// The mapped segment, when this base is one.
    pub fn as_segment(&self) -> Option<&Arc<Segment>> {
        match self {
            BaseStore::Mem(_) => None,
            BaseStore::Disk(s) => Some(s),
        }
    }
}

impl GraphView for BaseStore {
    fn len(&self) -> usize {
        BaseStore::len(self)
    }
    fn term_count(&self) -> usize {
        BaseStore::term_count(self)
    }
    fn lookup(&self, term: &Term) -> Option<TermId> {
        match self {
            BaseStore::Mem(g) => g.lookup(term),
            BaseStore::Disk(s) => GraphView::lookup(&**s, term),
        }
    }
    fn term(&self, id: TermId) -> &Term {
        match self {
            BaseStore::Mem(g) => g.term(id),
            BaseStore::Disk(s) => GraphView::term(&**s, id),
        }
    }
    fn contains_ids(&self, s: TermId, p: TermId, o: TermId) -> bool {
        match self {
            BaseStore::Mem(g) => g.contains_ids(s, p, o),
            BaseStore::Disk(seg) => GraphView::contains_ids(&**seg, s, p, o),
        }
    }
    fn match_pattern(
        &self,
        s: Option<TermId>,
        p: Option<TermId>,
        o: Option<TermId>,
    ) -> Vec<IdTriple> {
        match self {
            BaseStore::Mem(g) => g.match_pattern(s, p, o),
            BaseStore::Disk(seg) => GraphView::match_pattern(&**seg, s, p, o),
        }
    }
    fn maintained_stats(&self) -> Option<&GraphStats> {
        Some(self.stats())
    }
    fn ordered_run(&self, spec: RunSpec) -> Box<dyn RunCursor + '_> {
        match self {
            BaseStore::Mem(g) => Box::new(g.index_run(spec)),
            BaseStore::Disk(s) => GraphView::ordered_run(&**s, spec),
        }
    }
    fn iter_ids(&self) -> Box<dyn Iterator<Item = IdTriple> + '_> {
        match self {
            BaseStore::Mem(g) => Box::new(g.iter_ids()),
            BaseStore::Disk(s) => GraphView::iter_ids(&**s),
        }
    }
}

// ---- Ledger ----------------------------------------------------------

/// The main commit chain: a closed base graph (epoch 0) plus committed
/// layers (epoch `k` = base + first `k` layers). Append-only — layers
/// are never mutated or removed, so old epochs remain addressable and
/// any number of views can read the chain concurrently.
#[derive(Debug)]
pub struct Ledger {
    base: BaseStore,
    base_hash: u64,
    rdf_type: Option<TermId>,
    layers: Vec<std::sync::Arc<Layer>>,
}

impl Ledger {
    /// Seals `base` as epoch 0 of a new chain.
    pub fn new(base: Graph) -> Ledger {
        Ledger::from_base(BaseStore::Mem(base))
    }

    /// Seals any base store — in-memory or a reopened segment — as
    /// epoch 0. The base hash depends only on content, so a ledger
    /// rebuilt over a segment chains identically to the one whose
    /// graph the segment was written from.
    pub fn from_base(base: BaseStore) -> Ledger {
        let mut h = fnv_u64(FNV_OFFSET, base.term_count() as u64);
        h = fnv_u64(h, base.len() as u64);
        for t in GraphView::iter_ids(&base) {
            h = fnv_triple(h, t);
        }
        let rdf_type = base.lookup_iri(rdf::TYPE);
        Ledger {
            base,
            base_hash: h,
            rdf_type,
            layers: Vec::new(),
        }
    }

    /// The epoch-0 store.
    pub fn base(&self) -> &BaseStore {
        &self.base
    }

    /// The newest committed epoch.
    pub fn head(&self) -> EpochId {
        EpochId(self.layers.len() as u64)
    }

    /// The committed layers, oldest first.
    pub fn layers(&self) -> &[std::sync::Arc<Layer>] {
        &self.layers
    }

    /// The chained hash at `epoch` (the base hash for epoch 0), or
    /// `None` past the head.
    pub fn hash_at(&self, epoch: EpochId) -> Option<u64> {
        match epoch.0 {
            0 => Some(self.base_hash),
            n => self.layers.get(n as usize - 1).map(|l| l.hash()),
        }
    }

    /// Total term count visible at `epoch`, or `None` past the head.
    pub fn term_count_at(&self, epoch: EpochId) -> Option<usize> {
        if epoch.0 as usize > self.layers.len() {
            return None;
        }
        Some(
            self.base.term_count()
                + self.layers[..epoch.0 as usize]
                    .iter()
                    .map(|l| l.term_len())
                    .sum::<usize>(),
        )
    }

    /// Commits a session delta (per the `Overlay::into_delta` contract:
    /// spill ids start at the head's term count, triples in SPO order)
    /// as a new layer and returns the new head epoch.
    pub fn commit(&mut self, terms: Vec<Term>, delta: Vec<IdTriple>) -> EpochId {
        let head = self.head();
        let term_base = self
            .term_count_at(head)
            .unwrap_or_else(|| self.base.term_count());
        debug_assert!(
            delta
                .iter()
                .flatten()
                .all(|id| (id.0 as usize) < term_base + terms.len()),
            "delta references ids beyond the committed dictionary"
        );
        let parent = self.hash_at(head).unwrap_or(self.base_hash);
        let layer = Layer::new(term_base as u32, parent, self.rdf_type, terms, delta);
        self.layers.push(std::sync::Arc::new(layer));
        self.head()
    }

    /// A view of the chain at `epoch`, or `None` past the head.
    pub fn view(&self, epoch: EpochId) -> Option<LedgerView<'_>> {
        if epoch.0 as usize > self.layers.len() {
            return None;
        }
        Some(LedgerView::stack(
            &self.base,
            self.layers[..epoch.0 as usize].iter().map(|l| &**l),
        ))
    }

    /// The view at the head epoch.
    pub fn head_view(&self) -> LedgerView<'_> {
        LedgerView::stack(&self.base, self.layers.iter().map(|l| &**l))
    }

    /// Forks a branch chain at `epoch`, or `None` past the head. The
    /// branch shares the base and prefix by reference — nothing is
    /// copied.
    pub fn fork(&self, epoch: EpochId) -> Option<BranchChain> {
        if epoch.0 as usize > self.layers.len() {
            return None;
        }
        Some(BranchChain {
            fork: epoch,
            layers: Vec::new(),
        })
    }

    /// The view of a branch: the forked prefix plus the branch's own
    /// layers.
    pub fn branch_view<'a>(&'a self, chain: &'a BranchChain) -> LedgerView<'a> {
        LedgerView::stack(
            &self.base,
            self.layers[..chain.fork.0 as usize]
                .iter()
                .map(|l| &**l)
                .chain(chain.layers.iter().map(|l| &**l)),
        )
    }

    /// Commits a delta onto a branch chain; returns the branch's new
    /// head (counted over the whole stacked chain, prefix included).
    pub fn commit_branch(
        &self,
        chain: &mut BranchChain,
        terms: Vec<Term>,
        delta: Vec<IdTriple>,
    ) -> EpochId {
        let term_base = self.branch_view(chain).term_count();
        debug_assert!(
            delta
                .iter()
                .flatten()
                .all(|id| (id.0 as usize) < term_base + terms.len()),
            "branch delta references ids beyond the branch dictionary"
        );
        let parent = chain
            .layers
            .last()
            .map(|l| l.hash())
            .or_else(|| self.hash_at(chain.fork))
            .unwrap_or(self.base_hash);
        let layer = Layer::new(term_base as u32, parent, self.rdf_type, terms, delta);
        chain.layers.push(std::sync::Arc::new(layer));
        chain.head()
    }

    /// Recomputes every layer hash from its parent and content,
    /// returning the first epoch whose stored hash disagrees (chain
    /// intact ⇒ `None`).
    pub fn verify_chain(&self) -> Option<EpochId> {
        let mut parent = self.base_hash;
        for (i, layer) in self.layers.iter().enumerate() {
            let mut h = fnv_u64(parent, u64::from(layer.term_base));
            for t in &layer.terms {
                h = fnv_term(h, t);
            }
            for &[s, p, o] in &layer.spo {
                h = fnv_triple(h, [TermId(s), TermId(p), TermId(o)]);
            }
            if h != layer.hash {
                return Some(EpochId(i as u64 + 1));
            }
            parent = layer.hash;
        }
        None
    }
}

// ---- BranchChain -----------------------------------------------------

/// A named-world commit chain diverging from a ledger epoch. Owns only
/// its private layers; the base and the forked prefix stay in the
/// parent [`Ledger`].
#[derive(Debug, Default)]
pub struct BranchChain {
    fork: EpochId,
    layers: Vec<std::sync::Arc<Layer>>,
}

impl BranchChain {
    /// The main-chain epoch this branch forked from.
    pub fn fork_epoch(&self) -> EpochId {
        self.fork
    }

    /// Branch-private layers, oldest first.
    pub fn layers(&self) -> &[std::sync::Arc<Layer>] {
        &self.layers
    }

    /// The branch's head epoch: fork epoch + private commits.
    pub fn head(&self) -> EpochId {
        EpochId(self.fork.0 + self.layers.len() as u64)
    }

    /// The newest private layer's hash, if any commit diverged yet.
    pub fn head_hash(&self) -> Option<u64> {
        self.layers.last().map(|l| l.hash())
    }
}

// ---- LedgerView ------------------------------------------------------

/// A read-only stack of the base graph plus an ordered run of layers —
/// the [`GraphView`] of one epoch (main chain prefix, or prefix +
/// branch layers). Cheap to construct and [`Clone`]: it holds
/// references only.
#[derive(Debug, Clone)]
pub struct LedgerView<'a> {
    base: &'a BaseStore,
    layers: Vec<&'a Layer>,
    terms: usize,
    triples: usize,
}

impl<'a> LedgerView<'a> {
    fn stack(base: &'a BaseStore, layers: impl Iterator<Item = &'a Layer>) -> LedgerView<'a> {
        let layers: Vec<&'a Layer> = layers.collect();
        let terms = base.term_count() + layers.iter().map(|l| l.term_len()).sum::<usize>();
        let triples = base.len() + layers.iter().map(|l| l.len()).sum::<usize>();
        LedgerView {
            base,
            layers,
            terms,
            triples,
        }
    }

    /// The epoch-0 store under this stack.
    pub fn base_store(&self) -> &'a BaseStore {
        self.base
    }

    /// Number of stacked layers above the base.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }
}

impl GraphView for LedgerView<'_> {
    fn len(&self) -> usize {
        self.triples
    }

    fn term_count(&self) -> usize {
        self.terms
    }

    fn lookup(&self, term: &Term) -> Option<TermId> {
        if let Some(id) = self.base.lookup(term) {
            return Some(id);
        }
        // A term spills into at most one layer of a consistent stack.
        self.layers
            .iter()
            .find_map(|l| l.term_ids.get(term).copied())
    }

    fn term(&self, id: TermId) -> &Term {
        if (id.0 as usize) < self.base.term_count() {
            return self.base.term(id);
        }
        // Layers are ordered by ascending term_base: the owner is the
        // last layer whose base is <= id.
        let idx = self.layers.partition_point(|l| l.term_base <= id.0);
        let layer = &self.layers[idx.saturating_sub(1)];
        &layer.terms[(id.0 - layer.term_base) as usize]
    }

    fn contains_ids(&self, s: TermId, p: TermId, o: TermId) -> bool {
        self.base.contains_ids(s, p, o) || self.layers.iter().any(|l| l.contains(s, p, o))
    }

    fn match_pattern(
        &self,
        s: Option<TermId>,
        p: Option<TermId>,
        o: Option<TermId>,
    ) -> Vec<IdTriple> {
        let mut out = self.base.match_pattern(s, p, o);
        for l in &self.layers {
            if !l.is_empty() {
                out.extend(l.matches(s, p, o));
            }
        }
        out
    }

    fn predicate_stats(&self, p: TermId) -> PredicateStats {
        let mut acc = self.base.stats().predicate(p);
        // Distinct counts add across layers (a subject can recur), so
        // these are upper bounds — fine for join-order estimates, and
        // identical to what Overlay reports for the same stack.
        for l in &self.layers {
            let d = l.stats.predicate(p);
            acc.triples += d.triples;
            acc.distinct_subjects += d.distinct_subjects;
            acc.distinct_objects += d.distinct_objects;
        }
        acc
    }

    fn class_instance_count(&self, class_id: TermId) -> u64 {
        self.base.stats().class_instances(class_id)
            + self
                .layers
                .iter()
                .map(|l| l.stats.class_instances(class_id))
                .sum::<u64>()
    }

    fn ordered_run(&self, spec: RunSpec) -> Box<dyn RunCursor + '_> {
        if self.layers.iter().all(|l| l.is_empty()) {
            return self.base.ordered_run(spec);
        }
        // Base first, then layers oldest-first: the merged cursor's
        // flattened source order matches `match_pattern` concatenation.
        let mut parts: Vec<Box<dyn RunCursor + '_>> = Vec::with_capacity(self.layers.len() + 1);
        parts.push(self.base.ordered_run(spec));
        for l in &self.layers {
            if !l.is_empty() {
                parts.push(Box::new(l.run(spec)));
            }
        }
        Box::new(MergeRun::new(parts))
    }

    fn iter_ids(&self) -> Box<dyn Iterator<Item = IdTriple> + '_> {
        Box::new(
            self.base
                .iter_ids()
                .chain(self.layers.iter().flat_map(|l| l.iter_ids())),
        )
    }
}

/// Renders a view's triples as sorted canonical strings — the
/// content-level form used by [`diff_views`].
pub fn triple_strings(view: &LedgerView<'_>) -> Vec<String> {
    let mut v: Vec<String> = view.iter_triples().map(|t: Triple| t.to_string()).collect();
    v.sort();
    v
}

/// Content-level symmetric difference of two views: triples only in
/// `a`, and triples only in `b`, each sorted. Rendering goes through
/// each view's own dictionary, so diverged branches with clashing id
/// spaces compare correctly.
pub fn diff_views(a: &LedgerView<'_>, b: &LedgerView<'_>) -> (Vec<String>, Vec<String>) {
    let sa = triple_strings(a);
    let sb = triple_strings(b);
    let set_a: std::collections::BTreeSet<&String> = sa.iter().collect();
    let set_b: std::collections::BTreeSet<&String> = sb.iter().collect();
    let only_a = sa.iter().filter(|t| !set_b.contains(t)).cloned().collect();
    let only_b = sb.iter().filter(|t| !set_a.contains(t)).cloned().collect();
    (only_a, only_b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::{GraphStore, Overlay};

    fn seed_graph() -> Graph {
        let mut g = Graph::new();
        g.insert_iris("urn:a", rdf::TYPE, "urn:C");
        g.insert_iris("urn:a", "urn:p", "urn:b");
        g.insert_iris("urn:b", "urn:p", "urn:c");
        g
    }

    fn commit_overlay(
        ledger: &mut Ledger,
        write: impl FnOnce(&mut Overlay<&BaseStore>),
    ) -> EpochId {
        let mut ov = Overlay::new(ledger.base());
        // Stack the committed layers under the overlay by replaying: for
        // tests we only write fresh triples, so an overlay over the base
        // with matching term_base suffices when the ledger has no layers.
        write(&mut ov);
        let (terms, delta) = ov.into_delta();
        ledger.commit(terms, delta)
    }

    #[test]
    fn epoch_zero_is_the_base() {
        let ledger = Ledger::new(seed_graph());
        assert_eq!(ledger.head(), EpochId(0));
        let v = ledger.view(EpochId(0)).expect("epoch 0 exists");
        assert_eq!(v.len(), 3);
        assert_eq!(v.term_count(), ledger.base().term_count());
        assert!(ledger.view(EpochId(1)).is_none());
    }

    #[test]
    fn commit_appends_and_old_epochs_stay_addressable() {
        let mut ledger = Ledger::new(seed_graph());
        let e1 = commit_overlay(&mut ledger, |ov| {
            ov.insert_iris("urn:c", "urn:p", "urn:d");
        });
        assert_eq!(e1, EpochId(1));
        let e2 = commit_overlay(&mut ledger, |ov| {
            ov.insert_iris("urn:d", "urn:p", "urn:e");
        });
        assert_eq!(e2, EpochId(2));

        assert_eq!(ledger.view(EpochId(0)).map(|v| v.len()), Some(3));
        assert_eq!(ledger.view(EpochId(1)).map(|v| v.len()), Some(4));
        assert_eq!(ledger.view(EpochId(2)).map(|v| v.len()), Some(5));

        // Stacked lookups resolve spilled terms through the right layer.
        let head = ledger.head_view();
        let d = head.lookup(&Term::iri("urn:d")).expect("spilled in e1");
        assert_eq!(head.term(d), &Term::iri("urn:d"));
        let e = head.lookup(&Term::iri("urn:e")).expect("spilled in e2");
        assert_eq!(head.term(e), &Term::iri("urn:e"));
    }

    #[test]
    fn hashes_chain_and_verify() {
        let mut ledger = Ledger::new(seed_graph());
        commit_overlay(&mut ledger, |ov| {
            ov.insert_iris("urn:c", "urn:p", "urn:d");
        });
        let h0 = ledger.hash_at(EpochId(0)).expect("base hash");
        let h1 = ledger.hash_at(EpochId(1)).expect("layer hash");
        assert_ne!(h0, h1);
        assert_eq!(ledger.verify_chain(), None);

        // Identical content yields an identical chain.
        let mut other = Ledger::new(seed_graph());
        commit_overlay(&mut other, |ov| {
            ov.insert_iris("urn:c", "urn:p", "urn:d");
        });
        assert_eq!(other.hash_at(EpochId(1)), Some(h1));

        // Different content diverges.
        let mut third = Ledger::new(seed_graph());
        commit_overlay(&mut third, |ov| {
            ov.insert_iris("urn:c", "urn:p", "urn:x");
        });
        assert_ne!(third.hash_at(EpochId(1)), Some(h1));
    }

    #[test]
    fn branches_fork_without_copying_and_stay_isolated() {
        let mut ledger = Ledger::new(seed_graph());
        commit_overlay(&mut ledger, |ov| {
            ov.insert_iris("urn:c", "urn:p", "urn:d");
        });
        let head_before = ledger.head();
        let hash_before = ledger.hash_at(head_before);

        let mut branch = ledger.fork(EpochId(1)).expect("fork at head");
        let mut ov = Overlay::new(ledger.branch_view(&branch));
        ov.insert_iris("urn:z", "urn:p", "urn:w");
        let (terms, delta) = ov.into_delta();
        let bhead = ledger.commit_branch(&mut branch, terms, delta);
        assert_eq!(bhead, EpochId(2));

        // Branch sees its commit; the main chain is untouched.
        assert_eq!(ledger.branch_view(&branch).len(), 5);
        assert_eq!(ledger.head(), head_before);
        assert_eq!(ledger.hash_at(head_before), hash_before);
        assert_eq!(ledger.verify_chain(), None);

        let (only_b, only_m) = diff_views(&ledger.branch_view(&branch), &ledger.head_view());
        assert_eq!(only_b.len(), 1);
        assert!(only_b[0].contains("urn:z"));
        assert!(only_m.is_empty());
    }

    #[test]
    fn view_matches_equivalent_overlay() {
        let mut ledger = Ledger::new(seed_graph());
        commit_overlay(&mut ledger, |ov| {
            ov.insert_iris("urn:c", "urn:p", "urn:d");
            ov.insert_iris("urn:d", rdf::TYPE, "urn:C");
        });
        let view = ledger.head_view();

        let mut ov = Overlay::new(ledger.base());
        ov.insert_iris("urn:c", "urn:p", "urn:d");
        ov.insert_iris("urn:d", rdf::TYPE, "urn:C");

        assert_eq!(view.len(), ov.len());
        assert_eq!(view.term_count(), ov.term_count());
        let p = view.lookup(&Term::iri("urn:p")).expect("p interned");
        assert_eq!(view.predicate_stats(p), ov.predicate_stats(p));
        let c = view.lookup(&Term::iri("urn:C")).expect("C interned");
        assert_eq!(view.class_instance_count(c), ov.class_instance_count(c));
        let all_v: Vec<IdTriple> = view.match_pattern(None, None, None);
        let all_o: Vec<IdTriple> = ov.match_pattern(None, None, None);
        assert_eq!(all_v.len(), all_o.len());
    }
}
