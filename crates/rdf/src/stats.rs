//! Incrementally-maintained graph statistics for cost-based planning.
//!
//! The SPARQL planner orders joins by estimated cardinality, which it
//! derives from three families of counters: per-predicate triple counts
//! with distinct-subject/object counts (fan-out estimates for bound
//! subject or object lookups), class-instance counts (exact
//! cardinalities for `?x rdf:type <C>` patterns), and the total triple
//! count. [`Graph`](crate::Graph) and [`Overlay`](crate::Overlay)
//! maintain a [`GraphStats`] on every insert/remove, so reading a
//! counter is O(1) at plan time — no scan ever runs just to cost one.
//!
//! Distinct counts are exact for a single store. An overlay reports the
//! sum of its base's counts and its delta's counts, which can overcount
//! a subject or object present in both layers; estimates only steer
//! join order, so an upper bound is acceptable there.

use std::collections::HashMap;

use crate::intern::TermId;
use crate::term::Term;
use crate::vocab::rdf;

/// Distribution counters for a single predicate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredicateStats {
    /// Number of triples with this predicate.
    pub triples: u64,
    /// Distinct subjects among those triples.
    pub distinct_subjects: u64,
    /// Distinct objects among those triples.
    pub distinct_objects: u64,
}

impl PredicateStats {
    /// Average number of objects per bound subject (fan-out of an
    /// `s p ?o` lookup). Zero when the predicate is absent.
    pub fn objects_per_subject(&self) -> f64 {
        if self.distinct_subjects == 0 {
            0.0
        } else {
            self.triples as f64 / self.distinct_subjects as f64
        }
    }

    /// Average number of subjects per bound object (fan-in of a
    /// `?s p o` lookup). Zero when the predicate is absent.
    pub fn subjects_per_object(&self) -> f64 {
        if self.distinct_objects == 0 {
            0.0
        } else {
            self.triples as f64 / self.distinct_objects as f64
        }
    }
}

/// Aggregate statistics over one triple store (or one overlay delta).
///
/// Maintained by the owning store: [`note_new_term`](Self::note_new_term)
/// on every dictionary allocation, [`record_insert`](Self::record_insert)
/// / [`record_remove`](Self::record_remove) on every index mutation. The
/// first-seen/last-seen flags come from the store, which can read them
/// off its B-tree indexes in O(log n) before mutating.
#[derive(Debug, Clone, Default)]
pub struct GraphStats {
    predicates: HashMap<u32, PredicateStats>,
    class_instances: HashMap<u32, u64>,
    rdf_type: Option<TermId>,
    total: u64,
}

impl GraphStats {
    pub fn new() -> Self {
        GraphStats::default()
    }

    /// Total triples recorded.
    pub fn total_triples(&self) -> u64 {
        self.total
    }

    /// Counters for one predicate (zeroes when never seen).
    pub fn predicate(&self, p: TermId) -> PredicateStats {
        self.predicates.get(&p.0).copied().unwrap_or_default()
    }

    /// Number of `rdf:type` triples whose object is `class`.
    pub fn class_instances(&self, class: TermId) -> u64 {
        self.class_instances.get(&class.0).copied().unwrap_or(0)
    }

    /// The interned id of `rdf:type` in the owning store's dictionary,
    /// once it has been interned there.
    pub fn rdf_type_id(&self) -> Option<TermId> {
        self.rdf_type
    }

    /// Pre-seeds the `rdf:type` id (an overlay copies it from its base
    /// so base-id type triples in the delta are classified correctly).
    pub fn set_rdf_type_id(&mut self, id: Option<TermId>) {
        if self.rdf_type.is_none() {
            self.rdf_type = id;
        }
    }

    /// Must be called whenever the owning dictionary allocates a fresh
    /// id, so `rdf:type` is recognized without a lookup per insert.
    pub fn note_new_term(&mut self, id: TermId, term: &Term) {
        if self.rdf_type.is_none() {
            if let Term::Iri(iri) = term {
                if iri.as_str() == rdf::TYPE {
                    self.rdf_type = Some(id);
                }
            }
        }
    }

    /// Records a newly-inserted triple. `new_subject` / `new_object` say
    /// whether this is the first triple with this (subject, predicate) /
    /// (predicate, object) pair.
    pub fn record_insert(&mut self, s: TermId, p: TermId, o: TermId, new_sp: bool, new_po: bool) {
        let _ = s;
        self.total += 1;
        let e = self.predicates.entry(p.0).or_default();
        e.triples += 1;
        if new_sp {
            e.distinct_subjects += 1;
        }
        if new_po {
            e.distinct_objects += 1;
        }
        if self.rdf_type == Some(p) {
            *self.class_instances.entry(o.0).or_insert(0) += 1;
        }
    }

    /// Records a removed triple. `last_sp` / `last_po` say whether the
    /// store no longer holds any triple with this (subject, predicate) /
    /// (predicate, object) pair.
    pub fn record_remove(&mut self, s: TermId, p: TermId, o: TermId, last_sp: bool, last_po: bool) {
        let _ = s;
        self.total = self.total.saturating_sub(1);
        if let Some(e) = self.predicates.get_mut(&p.0) {
            e.triples = e.triples.saturating_sub(1);
            if last_sp {
                e.distinct_subjects = e.distinct_subjects.saturating_sub(1);
            }
            if last_po {
                e.distinct_objects = e.distinct_objects.saturating_sub(1);
            }
            if e.triples == 0 {
                self.predicates.remove(&p.0);
            }
        }
        if self.rdf_type == Some(p) {
            if let Some(n) = self.class_instances.get_mut(&o.0) {
                *n = n.saturating_sub(1);
                if *n == 0 {
                    self.class_instances.remove(&o.0);
                }
            }
        }
    }

    /// Forgets everything (overlay `clear_delta`). The `rdf:type` id is
    /// kept: dictionary ids are never evicted, so it stays valid.
    pub fn clear(&mut self) {
        self.predicates.clear();
        self.class_instances.clear();
        self.total = 0;
    }

    /// All per-predicate counters as `(raw id, counters)` pairs sorted
    /// by id — the canonical order used by the on-disk segment format.
    pub fn predicate_entries(&self) -> Vec<(u32, PredicateStats)> {
        let mut v: Vec<(u32, PredicateStats)> =
            self.predicates.iter().map(|(&p, &s)| (p, s)).collect();
        v.sort_unstable_by_key(|&(p, _)| p);
        v
    }

    /// All class-instance counters as `(raw id, count)` pairs sorted by
    /// id — the canonical order used by the on-disk segment format.
    pub fn class_entries(&self) -> Vec<(u32, u64)> {
        let mut v: Vec<(u32, u64)> = self.class_instances.iter().map(|(&c, &n)| (c, n)).collect();
        v.sort_unstable_by_key(|&(c, _)| c);
        v
    }

    /// Rebuilds a stats object from serialized counters — the inverse of
    /// [`predicate_entries`](Self::predicate_entries) /
    /// [`class_entries`](Self::class_entries) plus
    /// [`rdf_type_id`](Self::rdf_type_id) and
    /// [`total_triples`](Self::total_triples).
    pub fn from_entries(
        rdf_type: Option<TermId>,
        total: u64,
        predicates: Vec<(u32, PredicateStats)>,
        class_instances: Vec<(u32, u64)>,
    ) -> GraphStats {
        GraphStats {
            predicates: predicates.into_iter().collect(),
            class_instances: class_instances.into_iter().collect(),
            rdf_type,
            total,
        }
    }

    /// Folds `other`'s counters into `self` (overlay reads: base stats
    /// plus delta stats). Distinct counts add, so a term present in
    /// both layers is double-counted — the result is an upper bound.
    pub fn merged_with(&self, other: &GraphStats) -> GraphStats {
        let mut out = self.clone();
        out.total += other.total;
        for (&p, ps) in &other.predicates {
            let e = out.predicates.entry(p).or_default();
            e.triples += ps.triples;
            e.distinct_subjects += ps.distinct_subjects;
            e.distinct_objects += ps.distinct_objects;
        }
        for (&c, &n) in &other.class_instances {
            *out.class_instances.entry(c).or_insert(0) += n;
        }
        if out.rdf_type.is_none() {
            out.rdf_type = other.rdf_type;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::view::{GraphStore, GraphView, Overlay};

    #[test]
    fn graph_maintains_predicate_counters() {
        let mut g = Graph::new();
        g.insert_iris("http://e/a", "http://e/p", "http://e/b");
        g.insert_iris("http://e/a", "http://e/p", "http://e/c");
        g.insert_iris("http://e/d", "http://e/p", "http://e/c");
        let p = g.lookup_iri("http://e/p").unwrap();
        let ps = g.stats().predicate(p);
        assert_eq!(ps.triples, 3);
        assert_eq!(ps.distinct_subjects, 2);
        assert_eq!(ps.distinct_objects, 2);
        assert_eq!(g.stats().total_triples(), 3);
        // Duplicate insert changes nothing.
        g.insert_iris("http://e/a", "http://e/p", "http://e/b");
        assert_eq!(g.stats().predicate(p).triples, 3);
    }

    #[test]
    fn graph_counts_class_instances() {
        let mut g = Graph::new();
        g.insert_iris("http://e/x", rdf::TYPE, "http://e/Food");
        g.insert_iris("http://e/y", rdf::TYPE, "http://e/Food");
        g.insert_iris("http://e/y", rdf::TYPE, "http://e/Plant");
        let food = g.lookup_iri("http://e/Food").unwrap();
        let plant = g.lookup_iri("http://e/Plant").unwrap();
        assert_eq!(g.stats().class_instances(food), 2);
        assert_eq!(g.stats().class_instances(plant), 1);
        assert_eq!(g.stats().rdf_type_id(), g.lookup_iri(rdf::TYPE));
    }

    #[test]
    fn removal_reverses_counters() {
        let mut g = Graph::new();
        g.insert_iris("http://e/a", "http://e/p", "http://e/b");
        g.insert_iris("http://e/a", "http://e/p", "http://e/c");
        g.insert_iris("http://e/x", rdf::TYPE, "http://e/Food");
        let a = g.lookup_iri("http://e/a").unwrap();
        let p = g.lookup_iri("http://e/p").unwrap();
        let b = g.lookup_iri("http://e/b").unwrap();
        let c = g.lookup_iri("http://e/c").unwrap();
        g.remove_ids(a, p, b);
        let ps = g.stats().predicate(p);
        assert_eq!(ps.triples, 1);
        assert_eq!(ps.distinct_subjects, 1, "a still has (a,p,c)");
        assert_eq!(ps.distinct_objects, 1);
        g.remove_ids(a, p, c);
        assert_eq!(g.stats().predicate(p), PredicateStats::default());
        let x = g.lookup_iri("http://e/x").unwrap();
        let ty = g.lookup_iri(rdf::TYPE).unwrap();
        let food = g.lookup_iri("http://e/Food").unwrap();
        g.remove_ids(x, ty, food);
        assert_eq!(g.stats().class_instances(food), 0);
    }

    #[test]
    fn overlay_sums_base_and_delta() {
        let mut g = Graph::new();
        g.insert_iris("http://e/a", "http://e/p", "http://e/b");
        g.insert_iris("http://e/x", rdf::TYPE, "http://e/Food");
        let mut ov = Overlay::new(&g);
        ov.insert_iris("http://e/c", "http://e/p", "http://e/d");
        ov.insert_iris("http://e/z", rdf::TYPE, "http://e/Food");
        let p = GraphView::lookup_iri(&ov, "http://e/p").unwrap();
        let food = GraphView::lookup_iri(&ov, "http://e/Food").unwrap();
        assert_eq!(GraphView::predicate_stats(&ov, p).triples, 2);
        assert_eq!(GraphView::class_instance_count(&ov, food), 2);
        // Base untouched.
        assert_eq!(g.stats().predicate(p).triples, 1);
        assert_eq!(g.stats().class_instances(food), 1);
    }

    #[test]
    fn overlay_with_spilled_rdf_type_counts_classes() {
        // Base has no rdf:type at all; the overlay interns it into the
        // spill and must still classify type triples.
        let mut g = Graph::new();
        g.insert_iris("http://e/a", "http://e/p", "http://e/b");
        let mut ov = Overlay::new(&g);
        ov.insert_iris("http://e/x", rdf::TYPE, "http://e/Food");
        let food = GraphView::lookup_iri(&ov, "http://e/Food").unwrap();
        assert_eq!(GraphView::class_instance_count(&ov, food), 1);
    }

    #[test]
    fn clear_delta_resets_overlay_stats() {
        let mut g = Graph::new();
        g.insert_iris("http://e/a", "http://e/p", "http://e/b");
        let mut ov = Overlay::new(&g);
        ov.insert_iris("http://e/c", "http://e/p", "http://e/d");
        ov.clear_delta();
        let p = GraphView::lookup_iri(&ov, "http://e/p").unwrap();
        assert_eq!(GraphView::predicate_stats(&ov, p).triples, 1);
    }

    #[test]
    fn default_trait_impl_matches_maintained_counters() {
        // A view without an O(1) override (here: a bare closure over
        // match_pattern via the default trait body) must agree with the
        // incremental counters.
        let mut g = Graph::new();
        g.insert_iris("http://e/a", "http://e/p", "http://e/b");
        g.insert_iris("http://e/a", "http://e/p", "http://e/c");
        g.insert_iris("http://e/d", "http://e/q", "http://e/c");
        let p = g.lookup_iri("http://e/p").unwrap();
        let maintained = g.stats().predicate(p);
        let scanned = crate::view::scan_predicate_stats(&g, p);
        assert_eq!(maintained, scanned);
    }
}
