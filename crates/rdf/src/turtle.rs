//! Turtle (Terse RDF Triple Language) parser and serializer.
//!
//! The parser is a hand-written recursive-descent parser over a char
//! cursor, covering the Turtle 1.1 constructs the workspace's ontologies
//! use: prefix/base directives (both `@` and SPARQL-style), prefixed
//! names, IRI references with `\u`/`\U` escapes and relative resolution,
//! blank-node labels and property lists, collections, all literal forms
//! (quoted/long/numeric/boolean, language tags, datatypes), predicate-
//! object and object lists, and comments.

use std::collections::HashMap;
use std::fmt;

use crate::governor::{Exhausted, Guard};
use crate::graph::Graph;
use crate::term::{BlankNode, Iri, Literal, Term, Triple};
use crate::vocab::{rdf, xsd};
use crate::{ParseOptions, RdfError};

/// A Turtle parse error with 1-based line/column location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TurtleError {
    pub message: String,
    pub line: usize,
    pub column: usize,
}

impl fmt::Display for TurtleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "turtle parse error at {}:{}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for TurtleError {}

/// Parses a Turtle document into a list of triples.
///
/// With `opts.guard` set, the input-size cap is checked up front and
/// the deadline / cancellation flag at every statement and object
/// boundary; a tripped budget surfaces as [`RdfError::Exhausted`].
/// Syntax errors keep their line/column via [`RdfError::Syntax`].
pub fn parse_turtle(input: &str, opts: &ParseOptions) -> Result<Vec<Triple>, RdfError> {
    let Some(guard) = opts.guard else {
        return Ok(parse_turtle_raw(input)?);
    };
    guard.check_input(input.len())?;
    let mut parser = Parser::new(input);
    parser.guard = Some(guard);
    match parser.parse_document() {
        Ok(()) => Ok(parser.triples),
        Err(e) => match parser.tripped.take() {
            Some(exhausted) => Err(RdfError::Exhausted(exhausted)),
            None => Err(RdfError::Syntax(e)),
        },
    }
}

/// Unguarded parse with the raw syntax-error type; also the per-line
/// workhorse of the N-Triples reader.
pub(crate) fn parse_turtle_raw(input: &str) -> Result<Vec<Triple>, TurtleError> {
    let mut parser = Parser::new(input);
    parser.parse_document()?;
    Ok(parser.triples)
}

/// Parses a Turtle document under an execution [`Guard`].
#[deprecated(note = "use parse_turtle(input, &ParseOptions { guard: Some(guard) })")]
pub fn parse_turtle_guarded(input: &str, guard: &Guard) -> Result<Vec<Triple>, RdfError> {
    parse_turtle(input, &ParseOptions { guard: Some(guard) })
}

/// Parses a Turtle document directly into a [`Graph`], returning the
/// number of triples newly added.
pub fn parse_turtle_into(
    input: &str,
    graph: &mut Graph,
    opts: &ParseOptions,
) -> Result<usize, RdfError> {
    let triples = parse_turtle(input, opts)?;
    let mut added = 0;
    for t in &triples {
        if graph.insert(t) {
            added += 1;
        }
    }
    Ok(added)
}

struct Parser<'a> {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    column: usize,
    base: Option<String>,
    prefixes: HashMap<String, String>,
    triples: Vec<Triple>,
    bnode_counter: u64,
    guard: Option<&'a Guard>,
    tripped: Option<Exhausted>,
    _input: &'a str,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            chars: input.chars().collect(),
            pos: 0,
            line: 1,
            column: 1,
            base: None,
            prefixes: HashMap::new(),
            triples: Vec::new(),
            bnode_counter: 0,
            guard: None,
            tripped: None,
            _input: input,
        }
    }

    /// Hot-loop budget check. On a trip the [`Exhausted`] detail is
    /// stashed in `self.tripped` (the guarded entry point surfaces it)
    /// and a plain [`TurtleError`] unwinds the recursive descent.
    fn check_guard(&mut self) -> Result<(), TurtleError> {
        if let Some(g) = self.guard {
            if let Err(exhausted) = g.check_time() {
                self.tripped = Some(exhausted);
                return self.error("execution budget exhausted");
            }
        }
        Ok(())
    }

    fn error<T>(&self, message: impl Into<String>) -> Result<T, TurtleError> {
        Err(TurtleError {
            message: message.into(),
            line: self.line,
            column: self.column,
        })
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<char> {
        self.chars.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn skip_ws(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('#') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    fn expect(&mut self, c: char) -> Result<(), TurtleError> {
        match self.peek() {
            Some(x) if x == c => {
                self.bump();
                Ok(())
            }
            Some(x) => self.error(format!("expected '{c}', found '{x}'")),
            None => self.error(format!("expected '{c}', found end of input")),
        }
    }

    /// Case-insensitive keyword match followed by a non-name char.
    fn try_keyword(&mut self, kw: &str) -> bool {
        let mut off = 0;
        for kc in kw.chars() {
            match self.peek_at(off) {
                Some(c) if c.eq_ignore_ascii_case(&kc) => off += 1,
                _ => return false,
            }
        }
        match self.peek_at(off) {
            Some(c) if c.is_alphanumeric() || c == '_' => false,
            _ => {
                for _ in 0..off {
                    self.bump();
                }
                true
            }
        }
    }

    fn fresh_bnode(&mut self) -> Term {
        let t = Term::bnode(format!("tb{}", self.bnode_counter));
        self.bnode_counter += 1;
        t
    }

    fn parse_document(&mut self) -> Result<(), TurtleError> {
        loop {
            self.check_guard()?;
            self.skip_ws();
            if self.peek().is_none() {
                return Ok(());
            }
            if self.peek() == Some('@') {
                self.parse_at_directive()?;
                continue;
            }
            if self.try_keyword("PREFIX") {
                self.parse_prefix_body(false)?;
                continue;
            }
            if self.try_keyword("BASE") {
                self.parse_base_body(false)?;
                continue;
            }
            self.parse_triples_block()?;
            self.skip_ws();
            self.expect('.')?;
        }
    }

    fn parse_at_directive(&mut self) -> Result<(), TurtleError> {
        self.expect('@')?;
        if self.try_keyword("prefix") {
            self.parse_prefix_body(true)
        } else if self.try_keyword("base") {
            self.parse_base_body(true)
        } else {
            self.error("unknown @-directive (expected @prefix or @base)")
        }
    }

    fn parse_prefix_body(&mut self, dotted: bool) -> Result<(), TurtleError> {
        self.skip_ws();
        let mut name = String::new();
        while let Some(c) = self.peek() {
            if c == ':' {
                break;
            }
            if c.is_whitespace() {
                return self.error("prefix name may not contain whitespace");
            }
            name.push(c);
            self.bump();
        }
        self.expect(':')?;
        self.skip_ws();
        let iri = self.parse_iri_ref()?;
        self.prefixes.insert(name, iri);
        if dotted {
            self.skip_ws();
            self.expect('.')?;
        }
        Ok(())
    }

    fn parse_base_body(&mut self, dotted: bool) -> Result<(), TurtleError> {
        self.skip_ws();
        let iri = self.parse_iri_ref()?;
        self.base = Some(iri);
        if dotted {
            self.skip_ws();
            self.expect('.')?;
        }
        Ok(())
    }

    fn parse_triples_block(&mut self) -> Result<(), TurtleError> {
        self.skip_ws();
        // blankNodePropertyList as subject: may stand alone or take a
        // predicate-object list.
        if self.peek() == Some('[') {
            let subject = self.parse_bnode_property_list()?;
            self.skip_ws();
            if self.peek() != Some('.') {
                self.parse_predicate_object_list(&subject)?;
            }
            return Ok(());
        }
        let subject = self.parse_subject()?;
        self.parse_predicate_object_list(&subject)
    }

    fn parse_subject(&mut self) -> Result<Term, TurtleError> {
        self.skip_ws();
        match self.peek() {
            Some('<') => Ok(Term::Iri(Iri::new(self.parse_iri_ref_resolved()?))),
            Some('_') => self.parse_bnode_label(),
            Some('(') => self.parse_collection(),
            Some(_) => Ok(Term::Iri(Iri::new(self.parse_prefixed_name()?))),
            None => self.error("expected subject, found end of input"),
        }
    }

    fn parse_predicate_object_list(&mut self, subject: &Term) -> Result<(), TurtleError> {
        loop {
            self.skip_ws();
            let predicate = self.parse_predicate()?;
            loop {
                self.check_guard()?;
                self.skip_ws();
                let object = self.parse_object()?;
                self.triples.push(Triple {
                    subject: subject.clone(),
                    predicate: predicate.clone(),
                    object,
                });
                self.skip_ws();
                if self.peek() == Some(',') {
                    self.bump();
                } else {
                    break;
                }
            }
            self.skip_ws();
            if self.peek() == Some(';') {
                self.bump();
                self.skip_ws();
                // Trailing ';' before '.' or ']' is legal Turtle.
                if matches!(self.peek(), Some('.') | Some(']')) || self.peek().is_none() {
                    return Ok(());
                }
            } else {
                return Ok(());
            }
        }
    }

    fn parse_predicate(&mut self) -> Result<Term, TurtleError> {
        self.skip_ws();
        if self.peek() == Some('a')
            && matches!(self.peek_at(1), Some(c) if c.is_whitespace() || c == '<' || c == '[' || c == '_')
        {
            self.bump();
            return Ok(Term::iri(rdf::TYPE));
        }
        match self.peek() {
            Some('<') => Ok(Term::Iri(Iri::new(self.parse_iri_ref_resolved()?))),
            Some(_) => Ok(Term::Iri(Iri::new(self.parse_prefixed_name()?))),
            None => self.error("expected predicate, found end of input"),
        }
    }

    fn parse_object(&mut self) -> Result<Term, TurtleError> {
        self.skip_ws();
        match self.peek() {
            Some('<') => Ok(Term::Iri(Iri::new(self.parse_iri_ref_resolved()?))),
            Some('_') => self.parse_bnode_label(),
            Some('[') => self.parse_bnode_property_list(),
            Some('(') => self.parse_collection(),
            Some('"') | Some('\'') => self.parse_rdf_literal(),
            Some(c) if c == '+' || c == '-' || c.is_ascii_digit() => self.parse_numeric_literal(),
            Some(_) => {
                if self.try_keyword("true") {
                    return Ok(Term::boolean(true));
                }
                if self.try_keyword("false") {
                    return Ok(Term::boolean(false));
                }
                Ok(Term::Iri(Iri::new(self.parse_prefixed_name()?)))
            }
            None => self.error("expected object, found end of input"),
        }
    }

    fn parse_bnode_label(&mut self) -> Result<Term, TurtleError> {
        self.expect('_')?;
        self.expect(':')?;
        let mut label = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' || c == '-' || c == '.' {
                // '.' only allowed mid-label; stop if followed by non-name.
                if c == '.' {
                    match self.peek_at(1) {
                        Some(n) if n.is_alphanumeric() || n == '_' || n == '-' => {}
                        _ => break,
                    }
                }
                label.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if label.is_empty() {
            return self.error("empty blank node label");
        }
        Ok(Term::BlankNode(BlankNode::new(label)))
    }

    fn parse_bnode_property_list(&mut self) -> Result<Term, TurtleError> {
        self.expect('[')?;
        self.skip_ws();
        let node = self.fresh_bnode();
        if self.peek() == Some(']') {
            self.bump();
            return Ok(node);
        }
        self.parse_predicate_object_list(&node)?;
        self.skip_ws();
        self.expect(']')?;
        Ok(node)
    }

    fn parse_collection(&mut self) -> Result<Term, TurtleError> {
        self.expect('(')?;
        let mut items = Vec::new();
        loop {
            self.check_guard()?;
            self.skip_ws();
            if self.peek() == Some(')') {
                self.bump();
                break;
            }
            if self.peek().is_none() {
                return self.error("unterminated collection");
            }
            items.push(self.parse_object()?);
        }
        if items.is_empty() {
            return Ok(Term::iri(rdf::NIL));
        }
        let mut head = Term::iri(rdf::NIL);
        for item in items.into_iter().rev() {
            let node = self.fresh_bnode();
            self.triples.push(Triple {
                subject: node.clone(),
                predicate: Term::iri(rdf::FIRST),
                object: item,
            });
            self.triples.push(Triple {
                subject: node.clone(),
                predicate: Term::iri(rdf::REST),
                object: head,
            });
            head = node;
        }
        Ok(head)
    }

    fn parse_rdf_literal(&mut self) -> Result<Term, TurtleError> {
        let lexical = self.parse_string()?;
        match self.peek() {
            Some('@') => {
                self.bump();
                let mut tag = String::new();
                while let Some(c) = self.peek() {
                    if c.is_ascii_alphanumeric() || c == '-' {
                        tag.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                if tag.is_empty() {
                    return self.error("empty language tag");
                }
                Ok(Term::Literal(Literal::lang(lexical, tag)))
            }
            Some('^') => {
                self.bump();
                self.expect('^')?;
                self.skip_ws();
                let dt = match self.peek() {
                    Some('<') => self.parse_iri_ref_resolved()?,
                    _ => self.parse_prefixed_name()?,
                };
                Ok(Term::Literal(Literal::typed(lexical, Iri::new(dt))))
            }
            _ => Ok(Term::simple(lexical)),
        }
    }

    fn parse_string(&mut self) -> Result<String, TurtleError> {
        let quote = match self.peek() {
            Some(q @ ('"' | '\'')) => q,
            _ => return self.error("expected string literal"),
        };
        // Long string?
        if self.peek_at(1) == Some(quote) && self.peek_at(2) == Some(quote) {
            self.bump();
            self.bump();
            self.bump();
            let mut out = String::new();
            loop {
                if self.peek() == Some(quote)
                    && self.peek_at(1) == Some(quote)
                    && self.peek_at(2) == Some(quote)
                {
                    // Quotes are greedy: in `""""""` closing a string that
                    // ends with `"`, the final three quotes terminate and
                    // any extras before them belong to the content.
                    let mut run = 3;
                    while self.peek_at(run) == Some(quote) {
                        run += 1;
                    }
                    for _ in 0..(run - 3) {
                        out.push(quote);
                        self.bump();
                    }
                    self.bump();
                    self.bump();
                    self.bump();
                    return Ok(out);
                }
                match self.bump() {
                    Some('\\') => out.push(self.parse_escape()?),
                    Some(c) => out.push(c),
                    None => return self.error("unterminated long string"),
                }
            }
        }
        self.bump();
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(c) if c == quote => return Ok(out),
                Some('\\') => out.push(self.parse_escape()?),
                Some('\n') => return self.error("newline in short string literal"),
                Some(c) => out.push(c),
                None => return self.error("unterminated string"),
            }
        }
    }

    fn parse_escape(&mut self) -> Result<char, TurtleError> {
        match self.bump() {
            Some('t') => Ok('\t'),
            Some('b') => Ok('\u{8}'),
            Some('n') => Ok('\n'),
            Some('r') => Ok('\r'),
            Some('f') => Ok('\u{c}'),
            Some('"') => Ok('"'),
            Some('\'') => Ok('\''),
            Some('\\') => Ok('\\'),
            Some('u') => self.parse_unicode_escape(4),
            Some('U') => self.parse_unicode_escape(8),
            Some(c) => self.error(format!("invalid escape '\\{c}'")),
            None => self.error("unterminated escape"),
        }
    }

    fn parse_unicode_escape(&mut self, digits: usize) -> Result<char, TurtleError> {
        let mut v: u32 = 0;
        for _ in 0..digits {
            match self.bump().and_then(|c| c.to_digit(16)) {
                Some(d) => v = v * 16 + d,
                None => return self.error("invalid unicode escape"),
            }
        }
        char::from_u32(v).map_or_else(|| self.error("invalid unicode code point"), Ok)
    }

    fn parse_numeric_literal(&mut self) -> Result<Term, TurtleError> {
        let mut s = String::new();
        if matches!(self.peek(), Some('+') | Some('-')) {
            s.push(self.bump().unwrap());
        }
        let mut has_dot = false;
        let mut has_exp = false;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                s.push(c);
                self.bump();
            } else if c == '.' && !has_dot && !has_exp {
                // Only consume the dot when a digit or exponent follows —
                // otherwise it terminates the statement.
                match self.peek_at(1) {
                    Some(n) if n.is_ascii_digit() => {
                        has_dot = true;
                        s.push(c);
                        self.bump();
                    }
                    Some('e') | Some('E') => {
                        has_dot = true;
                        s.push(c);
                        self.bump();
                    }
                    _ => break,
                }
            } else if (c == 'e' || c == 'E') && !has_exp {
                has_exp = true;
                s.push(c);
                self.bump();
                if matches!(self.peek(), Some('+') | Some('-')) {
                    s.push(self.bump().unwrap());
                }
            } else {
                break;
            }
        }
        if s.is_empty() || s == "+" || s == "-" {
            return self.error("invalid numeric literal");
        }
        let dt = if has_exp {
            xsd::DOUBLE
        } else if has_dot {
            xsd::DECIMAL
        } else {
            xsd::INTEGER
        };
        Ok(Term::Literal(Literal::typed(s, Iri::new(dt))))
    }

    /// `<...>` with escapes; returns the raw (possibly relative) IRI text.
    fn parse_iri_ref(&mut self) -> Result<String, TurtleError> {
        self.expect('<')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some('>') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('u') => out.push(self.parse_unicode_escape(4)?),
                    Some('U') => out.push(self.parse_unicode_escape(8)?),
                    _ => return self.error("invalid IRI escape"),
                },
                Some(c) if c.is_whitespace() => return self.error("whitespace in IRI"),
                Some(c) => out.push(c),
                None => return self.error("unterminated IRI"),
            }
        }
    }

    /// `<...>` resolved against the document base.
    fn parse_iri_ref_resolved(&mut self) -> Result<String, TurtleError> {
        let raw = self.parse_iri_ref()?;
        Ok(resolve_iri(self.base.as_deref(), &raw))
    }

    fn parse_prefixed_name(&mut self) -> Result<String, TurtleError> {
        let mut prefix = String::new();
        while let Some(c) = self.peek() {
            if c == ':' {
                break;
            }
            if c.is_alphanumeric() || c == '_' || c == '-' || c == '.' {
                prefix.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if self.peek() != Some(':') {
            return self.error(format!(
                "expected prefixed name, found '{}'",
                self.peek().map_or(String::from("EOF"), |c| c.to_string())
            ));
        }
        self.bump(); // ':'
        let ns = match self.prefixes.get(&prefix) {
            Some(ns) => ns.clone(),
            None => return self.error(format!("undeclared prefix '{prefix}:'")),
        };
        let mut local = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' || c == '-' {
                local.push(c);
                self.bump();
            } else if c == '.' {
                // '.' allowed only when followed by another name char.
                match self.peek_at(1) {
                    Some(n) if n.is_alphanumeric() || n == '_' || n == '-' || n == ':' => {
                        local.push(c);
                        self.bump();
                    }
                    _ => break,
                }
            } else if c == '\\' {
                // PN_LOCAL_ESC
                self.bump();
                match self.bump() {
                    Some(e) if "_~.-!$&'()*+,;=/?#@%".contains(e) => local.push(e),
                    _ => return self.error("invalid local name escape"),
                }
            } else if c == '%' {
                // percent-encoded
                self.bump();
                let h1 = self.bump();
                let h2 = self.bump();
                match (h1, h2) {
                    (Some(a), Some(b)) if a.is_ascii_hexdigit() && b.is_ascii_hexdigit() => {
                        local.push('%');
                        local.push(a);
                        local.push(b);
                    }
                    _ => return self.error("invalid percent encoding in local name"),
                }
            } else {
                break;
            }
        }
        Ok(format!("{ns}{local}"))
    }
}

/// Resolves `reference` against `base` per a pragmatic subset of RFC 3986:
/// absolute references pass through, fragment/query references attach to
/// the base, path references merge with the base path.
pub fn resolve_iri(base: Option<&str>, reference: &str) -> String {
    if reference.contains(':')
        && reference.split(':').next().is_some_and(|s| {
            !s.is_empty()
                && s.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '+' || c == '-' || c == '.')
        })
    {
        // Looks like an absolute IRI with a scheme.
        if reference.find(':').unwrap() < reference.find('/').unwrap_or(usize::MAX) {
            return reference.to_string();
        }
    }
    let Some(base) = base else {
        return reference.to_string();
    };
    if reference.is_empty() {
        return base.to_string();
    }
    if let Some(frag) = reference.strip_prefix('#') {
        let stem = base.split('#').next().unwrap_or(base);
        return format!("{stem}#{frag}");
    }
    if reference.starts_with("//") {
        if let Some(scheme_end) = base.find(':') {
            return format!("{}:{}", &base[..scheme_end], reference);
        }
        return reference.to_string();
    }
    if let Some(rest) = reference.strip_prefix('/') {
        // Root-relative: scheme + authority of base.
        if let Some(auth_start) = base.find("//") {
            let after = &base[auth_start + 2..];
            let auth_end = after.find('/').map_or(base.len(), |i| auth_start + 2 + i);
            return format!("{}/{}", &base[..auth_end], rest);
        }
        return format!("{base}/{rest}");
    }
    // Path-relative: replace everything after the last '/' of the base.
    let stem = match base.rfind('/') {
        Some(i) => &base[..=i],
        None => base,
    };
    format!("{stem}{reference}")
}

/// Serializes a graph view as Turtle, using the provided prefix map
/// (`prefix name → namespace IRI`) to compact IRIs. Accepts any
/// [`GraphView`] — plain graphs, overlays, and stacked ledger views
/// export alike. Output is deterministic: subjects and predicates
/// appear in sorted term order.
pub fn write_turtle<G: crate::GraphView + ?Sized>(graph: &G, prefixes: &[(&str, &str)]) -> String {
    let mut out = String::new();
    for (name, ns) in prefixes {
        out.push_str(&format!("@prefix {name}: <{ns}> .\n"));
    }
    if !prefixes.is_empty() {
        out.push('\n');
    }

    let compact = |term: &Term| -> String {
        match term {
            Term::Iri(iri) => {
                for (name, ns) in prefixes {
                    if let Some(local) = iri.as_str().strip_prefix(ns) {
                        if !local.is_empty()
                            && local
                                .chars()
                                .all(|c| c.is_alphanumeric() || c == '_' || c == '-' || c == '.')
                            && !local.ends_with('.')
                        {
                            return format!("{name}:{local}");
                        }
                    }
                }
                term.to_string()
            }
            _ => term.to_string(),
        }
    };

    // Group triples by subject to emit predicate-object lists joined by ';'.
    let mut triples: Vec<Triple> = graph.iter_triples().collect();
    triples.sort();
    let mut i = 0;
    while i < triples.len() {
        let subject = triples[i].subject.clone();
        let mut parts: Vec<String> = Vec::new();
        while i < triples.len() && triples[i].subject == subject {
            let t = &triples[i];
            let p = if t.predicate == Term::iri(rdf::TYPE) {
                "a".to_string()
            } else {
                compact(&t.predicate)
            };
            parts.push(format!("{p} {}", compact(&t.object)));
            i += 1;
        }
        out.push_str(&format!(
            "{} {} .\n",
            compact(&subject),
            parts.join(" ;\n    ")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> Vec<Triple> {
        parse_turtle(src, &ParseOptions::default()).expect("parse should succeed")
    }

    fn parse_err(src: &str) -> TurtleError {
        parse_turtle_raw(src).expect_err("parse should fail")
    }

    #[test]
    fn basic_triple() {
        let ts = parse_ok("<http://e/a> <http://e/p> <http://e/b> .");
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].subject, Term::iri("http://e/a"));
    }

    #[test]
    fn prefixes_and_a_keyword() {
        let ts = parse_ok(
            "@prefix ex: <http://e/> .\n\
             PREFIX feo: <http://e/feo#>\n\
             ex:apple a feo:Food .",
        );
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].predicate, Term::iri(rdf::TYPE));
        assert_eq!(ts[0].object, Term::iri("http://e/feo#Food"));
    }

    #[test]
    fn predicate_object_lists() {
        let ts = parse_ok(
            "@prefix e: <http://e/> .\n\
             e:a e:p e:b , e:c ; e:q e:d .",
        );
        assert_eq!(ts.len(), 3);
        assert!(ts.iter().all(|t| t.subject == Term::iri("http://e/a")));
    }

    #[test]
    fn trailing_semicolon_is_legal() {
        let ts = parse_ok("@prefix e: <http://e/> . e:a e:p e:b ; .");
        assert_eq!(ts.len(), 1);
    }

    #[test]
    fn literals_all_forms() {
        let ts = parse_ok(
            r#"@prefix e: <http://e/> .
               @prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
               e:a e:p "plain", "tagged"@en-US, "42"^^xsd:integer, 7, -3.5, 1.2e3, true, false ."#,
        );
        assert_eq!(ts.len(), 8);
        let objects: Vec<_> = ts.iter().map(|t| t.object.clone()).collect();
        assert!(objects.contains(&Term::simple("plain")));
        assert!(objects.contains(&Term::Literal(Literal::lang("tagged", "en-us"))));
        assert!(objects.contains(&Term::Literal(Literal::typed("42", Iri::new(xsd::INTEGER)))));
        assert!(objects.contains(&Term::Literal(Literal::typed("7", Iri::new(xsd::INTEGER)))));
        assert!(objects.contains(&Term::Literal(Literal::typed(
            "-3.5",
            Iri::new(xsd::DECIMAL)
        ))));
        assert!(objects.contains(&Term::Literal(Literal::typed(
            "1.2e3",
            Iri::new(xsd::DOUBLE)
        ))));
        assert!(objects.contains(&Term::boolean(true)));
        assert!(objects.contains(&Term::boolean(false)));
    }

    #[test]
    fn long_strings_and_escapes() {
        let ts = parse_ok(
            "@prefix e: <http://e/> .\n\
             e:a e:p \"\"\"line1\nline2 \"quoted\"\"\"\" .",
        );
        assert_eq!(ts[0].object, Term::simple("line1\nline2 \"quoted\""));
        let ts = parse_ok(r#"@prefix e: <http://e/> . e:a e:p "tab\there!" ."#);
        assert_eq!(ts[0].object, Term::simple("tab\there!"));
    }

    #[test]
    fn blank_nodes_and_property_lists() {
        let ts = parse_ok(
            "@prefix e: <http://e/> .\n\
             _:x e:p [ e:q e:b ; e:r e:c ] .",
        );
        assert_eq!(ts.len(), 3);
        assert!(ts.iter().any(|t| t.subject == Term::bnode("x")));
    }

    #[test]
    fn bnode_property_list_as_subject() {
        let ts = parse_ok("@prefix e: <http://e/> . [ e:p e:b ] e:q e:c .");
        assert_eq!(ts.len(), 2);
        let ts = parse_ok("@prefix e: <http://e/> . [ e:p e:b ] .");
        assert_eq!(ts.len(), 1);
    }

    #[test]
    fn collections_expand_to_lists() {
        let ts = parse_ok("@prefix e: <http://e/> . e:a e:p (e:x e:y) .");
        // 1 link triple + 2*(first,rest)
        assert_eq!(ts.len(), 5);
        assert!(ts.iter().any(|t| t.predicate == Term::iri(rdf::FIRST)));
        assert!(ts
            .iter()
            .any(|t| t.predicate == Term::iri(rdf::REST) && t.object == Term::iri(rdf::NIL)));
        let ts = parse_ok("@prefix e: <http://e/> . e:a e:p () .");
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].object, Term::iri(rdf::NIL));
    }

    #[test]
    fn comments_are_skipped() {
        let ts = parse_ok(
            "# header comment\n\
             @prefix e: <http://e/> . # trailing\n\
             e:a e:p e:b . # done",
        );
        assert_eq!(ts.len(), 1);
    }

    #[test]
    fn base_resolution() {
        let ts = parse_ok(
            "@base <http://e/dir/doc> .\n\
             <#frag> <rel> </root> .",
        );
        assert_eq!(ts[0].subject, Term::iri("http://e/dir/doc#frag"));
        assert_eq!(ts[0].predicate, Term::iri("http://e/dir/rel"));
        assert_eq!(ts[0].object, Term::iri("http://e/root"));
    }

    #[test]
    fn undeclared_prefix_errors() {
        let err = parse_err("x:a x:p x:b .");
        assert!(err.message.contains("undeclared prefix"));
        assert_eq!(err.line, 1);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(parse_turtle_raw(r#"@prefix e: <http://e/> . e:a e:p "oops ."#).is_err());
    }

    #[test]
    fn error_location_is_tracked() {
        let err = parse_err("@prefix e: <http://e/> .\ne:a e:p % .");
        assert_eq!(err.line, 2);
    }

    #[test]
    fn local_names_with_dots_and_escapes() {
        let ts = parse_ok(r"@prefix e: <http://e/> . e:a.b e:p e:c\/d .");
        assert_eq!(ts[0].subject, Term::iri("http://e/a.b"));
        assert_eq!(ts[0].object, Term::iri("http://e/c/d"));
    }

    #[test]
    fn guarded_parse_trips_on_input_cap() {
        use crate::governor::{Budget, Resource};
        let guard = Budget::new().with_max_input_bytes(4).start();
        let opts = ParseOptions {
            guard: Some(&guard),
        };
        let err = parse_turtle("<http://e/a> <http://e/p> <http://e/b> .", &opts).unwrap_err();
        match err {
            RdfError::Exhausted(e) => {
                assert_eq!(e.resource, Resource::InputSize);
                assert_eq!(e.limit, 4);
            }
            other => panic!("expected Exhausted, got {other:?}"),
        }
    }

    #[test]
    fn guarded_parse_trips_on_cancellation() {
        use crate::governor::{Budget, CancelFlag, Resource};
        let flag = CancelFlag::new();
        flag.cancel();
        let guard = Budget::new().with_cancel(flag).start();
        // Enough statements that the amortized check fires.
        let doc = "<http://e/a> <http://e/p> <http://e/b> .\n".repeat(600);
        let err = parse_turtle(
            &doc,
            &ParseOptions {
                guard: Some(&guard),
            },
        )
        .unwrap_err();
        match err {
            RdfError::Exhausted(e) => assert_eq!(e.resource, Resource::Cancelled),
            other => panic!("expected Exhausted, got {other:?}"),
        }
    }

    #[test]
    fn guarded_parse_is_transparent_when_unlimited() {
        let guard = Guard::default();
        let ts = parse_turtle(
            "@prefix e: <http://e/> . e:a e:p e:b , e:c ; e:q (e:d e:f) .",
            &ParseOptions {
                guard: Some(&guard),
            },
        )
        .unwrap();
        assert_eq!(
            ts,
            parse_ok("@prefix e: <http://e/> . e:a e:p e:b , e:c ; e:q (e:d e:f) .")
        );
    }

    #[test]
    fn guarded_parse_keeps_syntax_location() {
        let guard = Guard::default();
        let opts = ParseOptions {
            guard: Some(&guard),
        };
        let err = parse_turtle("@prefix e: <http://e/> .\ne:a e:p % .", &opts).unwrap_err();
        match err {
            RdfError::Syntax(e) => assert_eq!(e.line, 2),
            other => panic!("expected Syntax, got {other:?}"),
        }
    }

    #[test]
    fn writer_round_trips() {
        let mut g = Graph::new();
        parse_turtle_into(
            "@prefix e: <http://e/> .\n\
             e:a a e:Food ; e:p \"v\"@en ; e:q 42 .",
            &mut g,
            &ParseOptions::default(),
        )
        .unwrap();
        let ttl = write_turtle(&g, &[("e", "http://e/")]);
        let mut g2 = Graph::new();
        parse_turtle_into(&ttl, &mut g2, &ParseOptions::default()).unwrap();
        assert_eq!(g.len(), g2.len());
        for t in g.iter_triples() {
            assert!(g2.contains(&t), "missing {t}");
        }
    }

    #[test]
    fn resolve_iri_cases() {
        assert_eq!(resolve_iri(None, "http://a/b"), "http://a/b");
        assert_eq!(resolve_iri(Some("http://a/b"), "http://c/d"), "http://c/d");
        assert_eq!(resolve_iri(Some("http://a/b#x"), "#y"), "http://a/b#y");
        assert_eq!(resolve_iri(Some("http://a/dir/f"), "g"), "http://a/dir/g");
        assert_eq!(resolve_iri(Some("http://a/dir/f"), "/g"), "http://a/g");
        assert_eq!(resolve_iri(Some("http://a/b"), ""), "http://a/b");
        assert_eq!(resolve_iri(Some("http://a/b"), "//h/i"), "http://h/i");
    }
}
