//! RDF 1.1 term model: IRIs, blank nodes, and literals.
//!
//! Terms are plain owned values; the [`crate::graph::Graph`] interns them
//! into compact [`crate::intern::TermId`]s for storage and joins, so `Term`
//! itself optimizes for clarity over footprint.

use std::fmt;

use crate::vocab::{rdf, xsd};

/// An IRI (RDF 1.1 "IRI" — we store the full absolute form, no relative
/// resolution happens at this level; the Turtle parser resolves against the
/// document base before constructing an `Iri`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Iri(String);

impl Iri {
    /// Wraps a string as an IRI. The string is trusted to be an absolute
    /// IRI; parsers validate before calling this.
    pub fn new(iri: impl Into<String>) -> Self {
        Iri(iri.into())
    }

    /// The IRI text, without angle brackets.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Splits the IRI into (namespace, local-name) at the last `#`, `/`,
    /// or `:`. Returns the whole IRI as local name when no separator
    /// exists.
    pub fn split_local(&self) -> (&str, &str) {
        match self.0.rfind(['#', '/', ':']) {
            Some(i) => self.0.split_at(i + 1),
            None => ("", &self.0),
        }
    }

    /// The local name (fragment after the last `#` or `/`).
    pub fn local_name(&self) -> &str {
        self.split_local().1
    }
}

impl fmt::Display for Iri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}>", self.0)
    }
}

impl From<&str> for Iri {
    fn from(s: &str) -> Self {
        Iri::new(s)
    }
}

impl From<String> for Iri {
    fn from(s: String) -> Self {
        Iri::new(s)
    }
}

/// A blank node, identified by its label within a single document/graph.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlankNode(String);

impl BlankNode {
    pub fn new(label: impl Into<String>) -> Self {
        BlankNode(label.into())
    }

    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for BlankNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "_:{}", self.0)
    }
}

/// An RDF 1.1 literal.
///
/// Per RDF 1.1 every literal has a datatype: simple literals are
/// `xsd:string`, language-tagged literals are `rdf:langString`. The
/// constructors normalize to that representation so equality and hashing
/// follow the spec ("abc" == "abc"^^xsd:string).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Literal {
    lexical: String,
    datatype: Iri,
    language: Option<String>,
}

impl Literal {
    /// A simple literal — datatype `xsd:string`.
    pub fn simple(lexical: impl Into<String>) -> Self {
        Literal {
            lexical: lexical.into(),
            datatype: Iri::new(xsd::STRING),
            language: None,
        }
    }

    /// A language-tagged string — datatype `rdf:langString`. The language
    /// tag is lower-cased, matching Turtle/SPARQL comparison semantics.
    pub fn lang(lexical: impl Into<String>, tag: impl Into<String>) -> Self {
        Literal {
            lexical: lexical.into(),
            datatype: Iri::new(rdf::LANG_STRING),
            language: Some(tag.into().to_ascii_lowercase()),
        }
    }

    /// A typed literal with an explicit datatype IRI.
    pub fn typed(lexical: impl Into<String>, datatype: Iri) -> Self {
        let lexical = lexical.into();
        if datatype.as_str() == xsd::STRING {
            return Literal::simple(lexical);
        }
        Literal {
            lexical,
            datatype,
            language: None,
        }
    }

    /// An `xsd:boolean` literal in canonical form.
    pub fn boolean(v: bool) -> Self {
        Literal::typed(if v { "true" } else { "false" }, Iri::new(xsd::BOOLEAN))
    }

    /// An `xsd:integer` literal in canonical form.
    pub fn integer(v: i64) -> Self {
        Literal::typed(v.to_string(), Iri::new(xsd::INTEGER))
    }

    /// An `xsd:double` literal.
    pub fn double(v: f64) -> Self {
        Literal::typed(format_double(v), Iri::new(xsd::DOUBLE))
    }

    /// An `xsd:decimal` literal.
    pub fn decimal(v: f64) -> Self {
        Literal::typed(format!("{v}"), Iri::new(xsd::DECIMAL))
    }

    pub fn lexical_form(&self) -> &str {
        &self.lexical
    }

    pub fn datatype(&self) -> &Iri {
        &self.datatype
    }

    pub fn language(&self) -> Option<&str> {
        self.language.as_deref()
    }

    /// Parses the lexical form as `xsd:boolean` if the datatype matches.
    pub fn as_bool(&self) -> Option<bool> {
        if self.datatype.as_str() != xsd::BOOLEAN {
            return None;
        }
        match self.lexical.as_str() {
            "true" | "1" => Some(true),
            "false" | "0" => Some(false),
            _ => None,
        }
    }

    /// Parses the lexical form as an integer when the datatype is one of
    /// the XSD integer types.
    pub fn as_integer(&self) -> Option<i64> {
        if xsd::is_integer_type(self.datatype.as_str()) {
            self.lexical.parse().ok()
        } else {
            None
        }
    }

    /// Parses the lexical form as a double when the datatype is any XSD
    /// numeric type.
    pub fn as_double(&self) -> Option<f64> {
        if xsd::is_numeric_type(self.datatype.as_str()) {
            self.lexical.trim().parse().ok()
        } else {
            None
        }
    }

    /// True when this literal's datatype is numeric (integer, decimal,
    /// float, double and friends).
    pub fn is_numeric(&self) -> bool {
        xsd::is_numeric_type(self.datatype.as_str())
    }
}

fn format_double(v: f64) -> String {
    if v == v.trunc() && v.is_finite() && v.abs() < 1e15 {
        // Keep a decimal point so the form is still a valid double literal.
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

impl fmt::Display for Literal {
    /// Writes the literal in Turtle/N-Triples syntax.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "\"{}\"", escape_literal(&self.lexical))?;
        if let Some(lang) = &self.language {
            write!(f, "@{lang}")
        } else if self.datatype.as_str() != xsd::STRING {
            write!(f, "^^{}", self.datatype)
        } else {
            Ok(())
        }
    }
}

/// Escapes a literal's lexical form for Turtle/N-Triples output.
pub fn escape_literal(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out
}

/// Any RDF term: IRI, blank node, or literal.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    Iri(Iri),
    BlankNode(BlankNode),
    Literal(Literal),
}

impl Term {
    pub fn iri(iri: impl Into<String>) -> Self {
        Term::Iri(Iri::new(iri))
    }

    pub fn bnode(label: impl Into<String>) -> Self {
        Term::BlankNode(BlankNode::new(label))
    }

    pub fn simple(lexical: impl Into<String>) -> Self {
        Term::Literal(Literal::simple(lexical))
    }

    pub fn boolean(v: bool) -> Self {
        Term::Literal(Literal::boolean(v))
    }

    pub fn integer(v: i64) -> Self {
        Term::Literal(Literal::integer(v))
    }

    pub fn double(v: f64) -> Self {
        Term::Literal(Literal::double(v))
    }

    pub fn is_iri(&self) -> bool {
        matches!(self, Term::Iri(_))
    }

    pub fn is_blank(&self) -> bool {
        matches!(self, Term::BlankNode(_))
    }

    pub fn is_literal(&self) -> bool {
        matches!(self, Term::Literal(_))
    }

    pub fn as_iri(&self) -> Option<&Iri> {
        match self {
            Term::Iri(i) => Some(i),
            _ => None,
        }
    }

    pub fn as_literal(&self) -> Option<&Literal> {
        match self {
            Term::Literal(l) => Some(l),
            _ => None,
        }
    }

    /// True for IRIs and blank nodes — terms allowed in subject position.
    pub fn is_resource(&self) -> bool {
        !self.is_literal()
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(i) => i.fmt(f),
            Term::BlankNode(b) => b.fmt(f),
            Term::Literal(l) => l.fmt(f),
        }
    }
}

impl From<Iri> for Term {
    fn from(i: Iri) -> Self {
        Term::Iri(i)
    }
}

impl From<BlankNode> for Term {
    fn from(b: BlankNode) -> Self {
        Term::BlankNode(b)
    }
}

impl From<Literal> for Term {
    fn from(l: Literal) -> Self {
        Term::Literal(l)
    }
}

/// An un-interned RDF triple, mostly used at API boundaries (parsers,
/// serializers). Internal storage uses interned ids.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Triple {
    pub subject: Term,
    pub predicate: Term,
    pub object: Term,
}

impl Triple {
    pub fn new(
        subject: impl Into<Term>,
        predicate: impl Into<Term>,
        object: impl Into<Term>,
    ) -> Self {
        Triple {
            subject: subject.into(),
            predicate: predicate.into(),
            object: object.into(),
        }
    }
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} .", self.subject, self.predicate, self.object)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_literal_is_xsd_string() {
        let a = Literal::simple("abc");
        let b = Literal::typed("abc", Iri::new(xsd::STRING));
        assert_eq!(a, b);
        assert_eq!(a.datatype().as_str(), xsd::STRING);
    }

    #[test]
    fn lang_literal_normalizes_tag_case() {
        let l = Literal::lang("hello", "EN-us");
        assert_eq!(l.language(), Some("en-us"));
        assert_eq!(l.datatype().as_str(), rdf::LANG_STRING);
    }

    #[test]
    fn boolean_parsing() {
        assert_eq!(Literal::boolean(true).as_bool(), Some(true));
        assert_eq!(
            Literal::typed("1", Iri::new(xsd::BOOLEAN)).as_bool(),
            Some(true)
        );
        assert_eq!(
            Literal::typed("0", Iri::new(xsd::BOOLEAN)).as_bool(),
            Some(false)
        );
        assert_eq!(Literal::simple("true").as_bool(), None);
    }

    #[test]
    fn numeric_parsing() {
        assert_eq!(Literal::integer(42).as_integer(), Some(42));
        assert_eq!(Literal::integer(42).as_double(), Some(42.0));
        assert_eq!(Literal::double(2.5).as_double(), Some(2.5));
        assert!(Literal::double(2.5).as_integer().is_none());
        assert!(Literal::simple("42").as_integer().is_none());
    }

    #[test]
    fn iri_local_name() {
        assert_eq!(Iri::new("http://ex.org/feo#Autumn").local_name(), "Autumn");
        assert_eq!(Iri::new("http://ex.org/feo/Autumn").local_name(), "Autumn");
        assert_eq!(Iri::new("urn:x").local_name(), "x");
    }

    #[test]
    fn display_forms() {
        assert_eq!(Term::iri("http://e/x").to_string(), "<http://e/x>");
        assert_eq!(Term::bnode("b0").to_string(), "_:b0");
        assert_eq!(Term::simple("hi").to_string(), "\"hi\"");
        assert_eq!(
            Term::Literal(Literal::lang("hi", "en")).to_string(),
            "\"hi\"@en"
        );
        assert_eq!(
            Term::integer(3).to_string(),
            format!("\"3\"^^<{}>", xsd::INTEGER)
        );
    }

    #[test]
    fn literal_escaping() {
        let l = Literal::simple("a\"b\\c\nd");
        assert_eq!(l.to_string(), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn double_formatting_keeps_decimal_point() {
        assert_eq!(Literal::double(2.0).lexical_form(), "2.0");
        assert_eq!(Literal::double(2.5).lexical_form(), "2.5");
    }
}
