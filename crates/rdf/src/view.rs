//! Read/write abstraction over triple stores: the [`GraphView`] read
//! trait, the [`GraphStore`] mutation trait, and [`Overlay`] — an
//! immutable base snapshot plus a mutable delta.
//!
//! The engine's hot path is "materialize one base graph, then answer
//! many independent questions". Each question adds a handful of ABox
//! triples (the question individual, a hypothesis, a population), reads
//! the result, and must not leak into the next question. `Overlay`
//! gives every question a private write layer over a shared `&Graph`
//! (or any other view) without cloning the base: reads union the base
//! indexes with the delta indexes, writes go to the delta only, and
//! newly seen terms spill into a private dictionary whose ids start at
//! `base.term_count()` so base ids stay valid verbatim.

use std::collections::{BTreeSet, HashMap};

use crate::graph::{Graph, IdTriple};
use crate::intern::TermId;
use crate::run::{BTreeRun, MergeRun, PairRun, RunCursor, RunSpec};
use crate::stats::{GraphStats, PredicateStats};
use crate::term::{Iri, Term, Triple};
use crate::vocab::rdf;

/// Computes [`PredicateStats`] by scanning: the fallback used by views
/// with no incrementally-maintained counters.
pub(crate) fn scan_predicate_stats<G: GraphView + ?Sized>(g: &G, p: TermId) -> PredicateStats {
    let matches = g.match_pattern(None, Some(p), None);
    let mut subjects: BTreeSet<u32> = BTreeSet::new();
    let mut objects: BTreeSet<u32> = BTreeSet::new();
    for t in &matches {
        subjects.insert(t[0].0);
        objects.insert(t[2].0);
    }
    PredicateStats {
        triples: matches.len() as u64,
        distinct_subjects: subjects.len() as u64,
        distinct_objects: objects.len() as u64,
    }
}

/// Read-only view of a triple store with an interned dictionary.
///
/// Implemented by [`Graph`], [`Overlay`], and references to either, so
/// query-shaped code can run over a plain graph, a snapshot + delta, or
/// `&mut` borrows call sites already hold.
pub trait GraphView {
    /// Number of triples.
    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of distinct terms in the dictionary. Also the smallest id
    /// not in use: dictionaries are dense, so layering (overlay spills,
    /// evaluator scratch ids) allocates from here up.
    fn term_count(&self) -> usize;

    /// Looks up a term without interning it.
    fn lookup(&self, term: &Term) -> Option<TermId>;

    /// Looks up an IRI string without interning it.
    fn lookup_iri(&self, iri: &str) -> Option<TermId> {
        self.lookup(&Term::iri(iri))
    }

    /// Resolves an id back to its term.
    fn term(&self, id: TermId) -> &Term;

    /// Pretty form of a term for messages: local name for IRIs, lexical
    /// form for literals, `_:label` for blank nodes.
    fn term_name(&self, id: TermId) -> String {
        match self.term(id) {
            Term::Iri(i) => i.local_name().to_string(),
            Term::BlankNode(b) => format!("_:{}", b.as_str()),
            Term::Literal(l) => l.lexical_form().to_string(),
        }
    }

    /// Does the view contain this interned triple?
    fn contains_ids(&self, s: TermId, p: TermId, o: TermId) -> bool;

    /// Does the view contain this term-level triple?
    fn contains(&self, triple: &Triple) -> bool {
        match (
            self.lookup(&triple.subject),
            self.lookup(&triple.predicate),
            self.lookup(&triple.object),
        ) {
            (Some(s), Some(p), Some(o)) => self.contains_ids(s, p, o),
            _ => false,
        }
    }

    /// All triples matching a pattern of optionally-bound positions.
    fn match_pattern(
        &self,
        s: Option<TermId>,
        p: Option<TermId>,
        o: Option<TermId>,
    ) -> Vec<IdTriple>;

    /// Objects of all `s p ?o` triples.
    fn objects(&self, s: TermId, p: TermId) -> Vec<TermId> {
        self.match_pattern(Some(s), Some(p), None)
            .into_iter()
            .map(|t| t[2])
            .collect()
    }

    /// The first object of `s p ?o`, if any.
    fn object(&self, s: TermId, p: TermId) -> Option<TermId> {
        self.match_pattern(Some(s), Some(p), None)
            .first()
            .map(|t| t[2])
    }

    /// Subjects of all `?s p o` triples.
    fn subjects(&self, p: TermId, o: TermId) -> Vec<TermId> {
        self.match_pattern(None, Some(p), Some(o))
            .into_iter()
            .map(|t| t[0])
            .collect()
    }

    /// All subjects with `rdf:type` `class_id`.
    fn instances_of(&self, class_id: TermId) -> Vec<TermId> {
        match self.lookup_iri(rdf::TYPE) {
            Some(ty) => self.subjects(ty, class_id),
            None => Vec::new(),
        }
    }

    /// Incrementally-maintained whole-view counters, when this view
    /// keeps them. Flat stores ([`Graph`], disk segments, ledger bases)
    /// return theirs; layered views return `None` and instead override
    /// the derived methods to sum per-layer stats.
    fn maintained_stats(&self) -> Option<&GraphStats> {
        None
    }

    /// Distribution counters for one predicate, used by the SPARQL
    /// planner's selectivity estimates. Answered in O(1) from
    /// [`Self::maintained_stats`] when available; the scanning fallback
    /// only runs for views with no maintained counters.
    fn predicate_stats(&self, p: TermId) -> PredicateStats {
        match self.maintained_stats() {
            Some(st) => st.predicate(p),
            None => scan_predicate_stats(self, p),
        }
    }

    /// Number of `rdf:type` triples whose object is `class_id` — the
    /// exact cardinality of a `?x rdf:type <C>` pattern. O(1) wherever
    /// [`Self::maintained_stats`] answers.
    fn class_instance_count(&self, class_id: TermId) -> u64 {
        match self.maintained_stats() {
            Some(st) => st.class_instances(class_id),
            None => self.instances_of(class_id).len() as u64,
        }
    }

    /// Sorted, seekable cursor over the ids at the free position of
    /// `spec` (see [`RunSpec`]). Backends with native sorted runs
    /// (B-tree permutations, committed-layer vectors, mmap segment
    /// runs) stream them zero-copy; the default materializes the
    /// matching scan once, tagging each id with its scan position so
    /// `(source, id)` ordering still reproduces `match_pattern` order.
    fn ordered_run(&self, spec: RunSpec) -> Box<dyn RunCursor + '_> {
        let (scan, col) = match spec {
            RunSpec::Subjects { p, o } => (self.match_pattern(None, Some(p), Some(o)), 0),
            RunSpec::Objects { s, p } => (self.match_pattern(Some(s), Some(p), None), 2),
        };
        let mut pairs: Vec<(usize, u32)> = scan
            .iter()
            .enumerate()
            .map(|(i, t)| (i, t[col].0))
            .collect();
        pairs.sort_by_key(|&(i, v)| (v, i));
        pairs.dedup_by_key(|&mut (_, v)| v);
        Box::new(PairRun::new(pairs))
    }

    /// Iterates all triples as interned ids.
    fn iter_ids(&self) -> Box<dyn Iterator<Item = IdTriple> + '_>;

    /// Iterates all triples as term-level [`Triple`]s (clones terms).
    fn iter_triples(&self) -> Box<dyn Iterator<Item = Triple> + '_> {
        Box::new(self.iter_ids().map(move |[s, p, o]| Triple {
            subject: self.term(s).clone(),
            predicate: self.term(p).clone(),
            object: self.term(o).clone(),
        }))
    }

    /// Reads an RDF collection rooted at `head` (see [`Graph::read_list`]).
    fn read_list(&self, head: TermId) -> Option<Vec<TermId>> {
        let first = self.lookup_iri(rdf::FIRST)?;
        let rest = self.lookup_iri(rdf::REST)?;
        let nil = self.lookup_iri(rdf::NIL)?;
        let mut members = Vec::new();
        let mut node = head;
        let mut steps = 0usize;
        while node != nil {
            members.push(self.object(node, first)?);
            node = self.object(node, rest)?;
            steps += 1;
            if steps > self.len() + 1 {
                return None; // cyclic list
            }
        }
        Some(members)
    }
}

/// Mutation over a triple store: interning plus insert. Removal is
/// deliberately absent — the reasoner and the explanation pipeline are
/// insert-only, and overlays discard their delta wholesale instead.
pub trait GraphStore: GraphView {
    /// Interns a term into the writable dictionary (the spill, for an
    /// overlay whose base already lacks it).
    fn intern(&mut self, term: &Term) -> TermId;

    /// Interns an IRI string.
    fn intern_iri(&mut self, iri: &str) -> TermId {
        self.intern(&Term::iri(iri))
    }

    /// A fresh blank node unique within this store.
    fn fresh_bnode(&mut self) -> TermId;

    /// Inserts an interned triple. Returns true when newly added.
    fn insert_ids(&mut self, s: TermId, p: TermId, o: TermId) -> bool;

    /// Interns the terms of `triple` and inserts it.
    fn insert(&mut self, triple: &Triple) -> bool {
        let s = self.intern(&triple.subject);
        let p = self.intern(&triple.predicate);
        let o = self.intern(&triple.object);
        self.insert_ids(s, p, o)
    }

    /// Convenience: insert three terms.
    fn insert_terms(&mut self, s: impl Into<Term>, p: impl Into<Term>, o: impl Into<Term>) -> bool
    where
        Self: Sized,
    {
        let s = self.intern(&s.into());
        let p = self.intern(&p.into());
        let o = self.intern(&o.into());
        self.insert_ids(s, p, o)
    }

    /// Convenience: insert a triple of IRI strings.
    fn insert_iris(&mut self, s: &str, p: &str, o: &str) -> bool
    where
        Self: Sized,
    {
        self.insert_terms(Iri::new(s), Iri::new(p), Iri::new(o))
    }

    /// Writes `items` as an RDF collection, returning the head node.
    fn write_list(&mut self, items: &[TermId]) -> TermId {
        let first = self.intern_iri(rdf::FIRST);
        let rest = self.intern_iri(rdf::REST);
        let nil = self.intern_iri(rdf::NIL);
        let mut head = nil;
        for &item in items.iter().rev() {
            let node = self.fresh_bnode();
            self.insert_ids(node, first, item);
            self.insert_ids(node, rest, head);
            head = node;
        }
        head
    }
}

// ---- trait impls for Graph and references -------------------------------

impl GraphView for Graph {
    fn len(&self) -> usize {
        Graph::len(self)
    }
    fn term_count(&self) -> usize {
        Graph::term_count(self)
    }
    fn lookup(&self, term: &Term) -> Option<TermId> {
        Graph::lookup(self, term)
    }
    fn lookup_iri(&self, iri: &str) -> Option<TermId> {
        Graph::lookup_iri(self, iri)
    }
    fn term(&self, id: TermId) -> &Term {
        Graph::term(self, id)
    }
    fn term_name(&self, id: TermId) -> String {
        Graph::term_name(self, id)
    }
    fn contains_ids(&self, s: TermId, p: TermId, o: TermId) -> bool {
        Graph::contains_ids(self, s, p, o)
    }
    fn contains(&self, triple: &Triple) -> bool {
        Graph::contains(self, triple)
    }
    fn match_pattern(
        &self,
        s: Option<TermId>,
        p: Option<TermId>,
        o: Option<TermId>,
    ) -> Vec<IdTriple> {
        Graph::match_pattern(self, s, p, o)
    }
    fn maintained_stats(&self) -> Option<&GraphStats> {
        Some(Graph::stats(self))
    }
    fn ordered_run(&self, spec: RunSpec) -> Box<dyn RunCursor + '_> {
        Box::new(Graph::index_run(self, spec))
    }
    fn iter_ids(&self) -> Box<dyn Iterator<Item = IdTriple> + '_> {
        Box::new(Graph::iter_ids(self))
    }
    fn read_list(&self, head: TermId) -> Option<Vec<TermId>> {
        Graph::read_list(self, head)
    }
}

impl GraphStore for Graph {
    fn intern(&mut self, term: &Term) -> TermId {
        Graph::intern(self, term)
    }
    fn intern_iri(&mut self, iri: &str) -> TermId {
        Graph::intern_iri(self, iri)
    }
    fn fresh_bnode(&mut self) -> TermId {
        Graph::fresh_bnode(self)
    }
    fn insert_ids(&mut self, s: TermId, p: TermId, o: TermId) -> bool {
        Graph::insert_ids(self, s, p, o)
    }
    fn write_list(&mut self, items: &[TermId]) -> TermId {
        Graph::write_list(self, items)
    }
}

macro_rules! deref_graph_view {
    ($($ref_ty:ty),*) => {$(
        impl<T: GraphView> GraphView for $ref_ty {
            fn len(&self) -> usize { (**self).len() }
            fn term_count(&self) -> usize { (**self).term_count() }
            fn lookup(&self, term: &Term) -> Option<TermId> { (**self).lookup(term) }
            fn lookup_iri(&self, iri: &str) -> Option<TermId> { (**self).lookup_iri(iri) }
            fn term(&self, id: TermId) -> &Term { (**self).term(id) }
            fn term_name(&self, id: TermId) -> String { (**self).term_name(id) }
            fn contains_ids(&self, s: TermId, p: TermId, o: TermId) -> bool {
                (**self).contains_ids(s, p, o)
            }
            fn contains(&self, triple: &Triple) -> bool { (**self).contains(triple) }
            fn match_pattern(
                &self,
                s: Option<TermId>,
                p: Option<TermId>,
                o: Option<TermId>,
            ) -> Vec<IdTriple> {
                (**self).match_pattern(s, p, o)
            }
            fn maintained_stats(&self) -> Option<&GraphStats> {
                (**self).maintained_stats()
            }
            fn predicate_stats(&self, p: TermId) -> PredicateStats {
                (**self).predicate_stats(p)
            }
            fn class_instance_count(&self, class_id: TermId) -> u64 {
                (**self).class_instance_count(class_id)
            }
            fn ordered_run(&self, spec: RunSpec) -> Box<dyn RunCursor + '_> {
                (**self).ordered_run(spec)
            }
            fn iter_ids(&self) -> Box<dyn Iterator<Item = IdTriple> + '_> {
                (**self).iter_ids()
            }
            fn read_list(&self, head: TermId) -> Option<Vec<TermId>> {
                (**self).read_list(head)
            }
        }
    )*};
}

deref_graph_view!(&T, &mut T, std::sync::Arc<T>, Box<T>, std::rc::Rc<T>);

impl<T: GraphStore> GraphStore for &mut T {
    fn intern(&mut self, term: &Term) -> TermId {
        (**self).intern(term)
    }
    fn intern_iri(&mut self, iri: &str) -> TermId {
        (**self).intern_iri(iri)
    }
    fn fresh_bnode(&mut self) -> TermId {
        (**self).fresh_bnode()
    }
    fn insert_ids(&mut self, s: TermId, p: TermId, o: TermId) -> bool {
        (**self).insert_ids(s, p, o)
    }
    fn write_list(&mut self, items: &[TermId]) -> TermId {
        (**self).write_list(items)
    }
}

// ---- Overlay -------------------------------------------------------------

/// Matches `[a, b, *]` / `[a, *, *]` / `[*, *, *]` prefixes in a
/// permuted index, mirroring `Graph::match_pattern`'s range scans.
fn range3<'a>(
    set: &'a BTreeSet<[u32; 3]>,
    a: Option<u32>,
    b: Option<u32>,
) -> impl Iterator<Item = &'a [u32; 3]> + 'a {
    let (lo, hi) = match (a, b) {
        (Some(a), Some(b)) => ([a, b, 0], [a, b, u32::MAX]),
        (Some(a), None) => ([a, 0, 0], [a, u32::MAX, u32::MAX]),
        (None, _) => ([0, 0, 0], [u32::MAX, u32::MAX, u32::MAX]),
    };
    set.range(lo..=hi)
}

/// An immutable base snapshot plus a private mutable delta.
///
/// `B` is any [`GraphView`] — typically `&Graph` (a session borrowing a
/// shared materialized base) or `Arc<Graph>`. All writes land in the
/// delta; the base is never touched, so any number of overlays can
/// share one base concurrently. Term ids are unified: ids below
/// `base.term_count()` (frozen at construction) resolve in the base,
/// ids at or above it in the overlay's spill dictionary.
#[derive(Debug, Clone)]
pub struct Overlay<B> {
    base: B,
    /// `base.term_count()` at construction, the split point of id space.
    base_terms: u32,
    spill_terms: Vec<Term>,
    spill_ids: HashMap<Term, TermId>,
    spo: BTreeSet<[u32; 3]>,
    pos: BTreeSet<[u32; 3]>,
    osp: BTreeSet<[u32; 3]>,
    /// Delta triples in insertion order (for semi-naïve seeding).
    log: Vec<IdTriple>,
    next_bnode: u64,
    /// Counters over the delta only; reads sum them with the base's.
    delta_stats: GraphStats,
}

impl<B: GraphView> Overlay<B> {
    pub fn new(base: B) -> Self {
        let base_terms = u32::try_from(base.term_count()).expect("interner overflow: >4G terms");
        let mut delta_stats = GraphStats::new();
        delta_stats.set_rdf_type_id(base.lookup_iri(rdf::TYPE));
        Overlay {
            base,
            base_terms,
            spill_terms: Vec::new(),
            spill_ids: HashMap::new(),
            spo: BTreeSet::new(),
            pos: BTreeSet::new(),
            osp: BTreeSet::new(),
            log: Vec::new(),
            next_bnode: 0,
            delta_stats,
        }
    }

    /// The wrapped base view.
    pub fn base(&self) -> &B {
        &self.base
    }

    /// Number of triples in the delta only.
    pub fn delta_len(&self) -> usize {
        self.spo.len()
    }

    /// Delta triples in insertion order. Triples already present in the
    /// base never enter the delta.
    pub fn delta_log(&self) -> &[IdTriple] {
        &self.log
    }

    /// Delta triples in SPO order.
    pub fn delta_ids(&self) -> impl Iterator<Item = IdTriple> + '_ {
        self.spo
            .iter()
            .map(|&[s, p, o]| [TermId(s), TermId(p), TermId(o)])
    }

    /// Consumes the overlay, returning the spill dictionary (term `i`
    /// holds overlay id `base_terms + i`) and the delta triples in SPO
    /// order. Because the base interner also assigns dense sequential
    /// ids, interning the spill terms into the base **in this order**
    /// re-creates the exact same ids — so the returned id triples (and
    /// anything referencing them, e.g. derivation records) stay valid
    /// after merging the delta into the base.
    pub fn into_delta(self) -> (Vec<Term>, Vec<IdTriple>) {
        let ids = self
            .spo
            .iter()
            .map(|&[s, p, o]| [TermId(s), TermId(p), TermId(o)])
            .collect();
        (self.spill_terms, ids)
    }

    /// Drops every delta triple and spill term, returning the overlay to
    /// a pristine view of the base.
    pub fn clear_delta(&mut self) {
        self.spill_terms.clear();
        self.spill_ids.clear();
        self.spo.clear();
        self.pos.clear();
        self.osp.clear();
        self.log.clear();
        self.next_bnode = 0;
        self.delta_stats.clear();
    }

    fn delta_match(
        &self,
        s: Option<TermId>,
        p: Option<TermId>,
        o: Option<TermId>,
    ) -> Vec<IdTriple> {
        let id = |x: TermId| x.0;
        match (s.map(id), p.map(id), o.map(id)) {
            (Some(s), Some(p), Some(o)) => {
                if self.spo.contains(&[s, p, o]) {
                    vec![[TermId(s), TermId(p), TermId(o)]]
                } else {
                    Vec::new()
                }
            }
            (Some(s), p, None) => range3(&self.spo, Some(s), p)
                .map(|&[s, p, o]| [TermId(s), TermId(p), TermId(o)])
                .collect(),
            (None, Some(p), o) => range3(&self.pos, Some(p), o)
                .map(|&[p, o, s]| [TermId(s), TermId(p), TermId(o)])
                .collect(),
            (Some(s), None, Some(o)) => range3(&self.osp, Some(o), Some(s))
                .map(|&[o, s, p]| [TermId(s), TermId(p), TermId(o)])
                .collect(),
            (None, None, Some(o)) => range3(&self.osp, Some(o), None)
                .map(|&[o, s, p]| [TermId(s), TermId(p), TermId(o)])
                .collect(),
            (None, None, None) => self
                .spo
                .iter()
                .map(|&[s, p, o]| [TermId(s), TermId(p), TermId(o)])
                .collect(),
        }
    }
}

impl<B: GraphView> GraphView for Overlay<B> {
    fn len(&self) -> usize {
        self.base.len() + self.spo.len()
    }

    fn term_count(&self) -> usize {
        self.base_terms as usize + self.spill_terms.len()
    }

    fn lookup(&self, term: &Term) -> Option<TermId> {
        self.base
            .lookup(term)
            .or_else(|| self.spill_ids.get(term).copied())
    }

    fn term(&self, id: TermId) -> &Term {
        if id.0 < self.base_terms {
            self.base.term(id)
        } else {
            &self.spill_terms[(id.0 - self.base_terms) as usize]
        }
    }

    fn contains_ids(&self, s: TermId, p: TermId, o: TermId) -> bool {
        self.base.contains_ids(s, p, o) || self.spo.contains(&[s.0, p.0, o.0])
    }

    fn match_pattern(
        &self,
        s: Option<TermId>,
        p: Option<TermId>,
        o: Option<TermId>,
    ) -> Vec<IdTriple> {
        let mut out = self.base.match_pattern(s, p, o);
        if !self.spo.is_empty() {
            out.extend(self.delta_match(s, p, o));
        }
        out
    }

    fn predicate_stats(&self, p: TermId) -> PredicateStats {
        let base = self.base.predicate_stats(p);
        let delta = self.delta_stats.predicate(p);
        // Distinct counts add across layers (delta triples are never
        // duplicates of base triples, but a subject/object can recur),
        // so these are upper bounds — fine for join-order estimates.
        PredicateStats {
            triples: base.triples + delta.triples,
            distinct_subjects: base.distinct_subjects + delta.distinct_subjects,
            distinct_objects: base.distinct_objects + delta.distinct_objects,
        }
    }

    fn class_instance_count(&self, class_id: TermId) -> u64 {
        self.base.class_instance_count(class_id) + self.delta_stats.class_instances(class_id)
    }

    fn ordered_run(&self, spec: RunSpec) -> Box<dyn RunCursor + '_> {
        if self.spo.is_empty() {
            return self.base.ordered_run(spec);
        }
        // Delta after base: MergeRun's flattened source order matches
        // `match_pattern`'s base-then-delta concatenation.
        let delta: Box<dyn RunCursor + '_> = match spec {
            RunSpec::Subjects { p, o } => Box::new(BTreeRun::new(&self.pos, p.0, o.0)),
            RunSpec::Objects { s, p } => Box::new(BTreeRun::new(&self.spo, s.0, p.0)),
        };
        Box::new(MergeRun::new(vec![self.base.ordered_run(spec), delta]))
    }

    fn iter_ids(&self) -> Box<dyn Iterator<Item = IdTriple> + '_> {
        Box::new(self.base.iter_ids().chain(self.delta_ids()))
    }
}

impl<B: GraphView> GraphStore for Overlay<B> {
    fn intern(&mut self, term: &Term) -> TermId {
        if let Some(id) = self.base.lookup(term) {
            return id;
        }
        if let Some(&id) = self.spill_ids.get(term) {
            return id;
        }
        let raw = self.base_terms as usize + self.spill_terms.len();
        let id = TermId(u32::try_from(raw).expect("interner overflow: >4G terms"));
        self.spill_terms.push(term.clone());
        self.spill_ids.insert(term.clone(), id);
        self.delta_stats.note_new_term(id, term);
        id
    }

    fn fresh_bnode(&mut self) -> TermId {
        loop {
            // `s` prefix ("session") keeps overlay bnodes disjoint from the
            // base graph's `g` prefix by construction.
            let label = format!("s{}", self.next_bnode);
            self.next_bnode += 1;
            let t = Term::bnode(label);
            if self.lookup(&t).is_none() {
                return self.intern(&t);
            }
        }
    }

    fn insert_ids(&mut self, s: TermId, p: TermId, o: TermId) -> bool {
        if self.base.contains_ids(s, p, o) {
            return false;
        }
        if !self.spo.insert([s.0, p.0, o.0]) {
            return false;
        }
        let new_sp = self
            .spo
            .range([s.0, p.0, 0]..=[s.0, p.0, u32::MAX])
            .nth(1)
            .is_none();
        let new_po = self
            .pos
            .range([p.0, o.0, 0]..=[p.0, o.0, u32::MAX])
            .next()
            .is_none();
        self.pos.insert([p.0, o.0, s.0]);
        self.osp.insert([o.0, s.0, p.0]);
        self.log.push([s, p, o]);
        self.delta_stats.record_insert(s, p, o, new_sp, new_po);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Graph {
        let mut g = Graph::new();
        g.insert_iris("http://e/a", "http://e/p", "http://e/b");
        g.insert_iris("http://e/b", "http://e/p", "http://e/c");
        g.insert_iris("http://e/a", rdf::TYPE, "http://e/C");
        g
    }

    #[test]
    fn overlay_reads_union_base_and_delta() {
        let g = base();
        let mut ov = Overlay::new(&g);
        assert_eq!(GraphView::len(&ov), 3);
        ov.insert_iris("http://e/c", "http://e/p", "http://e/d");
        assert_eq!(GraphView::len(&ov), 4);
        assert_eq!(ov.delta_len(), 1);

        let p = GraphView::lookup_iri(&ov, "http://e/p").unwrap();
        assert_eq!(GraphView::match_pattern(&ov, None, Some(p), None).len(), 3);
        let c = GraphView::lookup_iri(&ov, "http://e/c").unwrap();
        let d = GraphView::lookup_iri(&ov, "http://e/d").unwrap();
        assert!(GraphView::contains_ids(&ov, c, p, d));
        assert_eq!(GraphView::objects(&ov, c, p), vec![d]);
        // The base graph itself is untouched.
        assert_eq!(g.len(), 3);
        assert!(g.lookup_iri("http://e/d").is_none());
    }

    #[test]
    fn spill_ids_extend_base_id_space() {
        let g = base();
        let n = g.term_count();
        let mut ov = Overlay::new(&g);
        let known = ov.intern(&Term::iri("http://e/a"));
        assert_eq!(known, g.lookup_iri("http://e/a").unwrap());
        let novel = ov.intern(&Term::iri("http://e/new"));
        assert_eq!(novel.index(), n);
        assert_eq!(GraphView::term(&ov, novel), &Term::iri("http://e/new"));
        assert_eq!(GraphView::term_count(&ov), n + 1);
        // Idempotent.
        assert_eq!(ov.intern(&Term::iri("http://e/new")), novel);
        // Base lookups still resolve below the split point.
        assert!(
            GraphView::lookup(&ov, &Term::iri("http://e/b"))
                .unwrap()
                .index()
                < n
        );
    }

    #[test]
    fn inserting_base_triples_is_a_noop() {
        let g = base();
        let mut ov = Overlay::new(&g);
        assert!(!ov.insert_iris("http://e/a", "http://e/p", "http://e/b"));
        assert_eq!(ov.delta_len(), 0);
        assert!(ov.delta_log().is_empty());
        // Duplicate delta inserts dedupe too.
        assert!(ov.insert_iris("http://e/x", "http://e/p", "http://e/y"));
        assert!(!ov.insert_iris("http://e/x", "http://e/p", "http://e/y"));
        assert_eq!(ov.delta_len(), 1);
        assert_eq!(ov.delta_log().len(), 1);
    }

    #[test]
    fn clear_delta_restores_pristine_view() {
        let g = base();
        let mut ov = Overlay::new(&g);
        ov.insert_iris("http://e/x", "http://e/p", "http://e/y");
        let b = ov.fresh_bnode();
        let p = ov.intern_iri("http://e/p");
        let a = GraphView::lookup_iri(&ov, "http://e/a").unwrap();
        ov.insert_ids(b, p, a);
        assert!(GraphView::len(&ov) > 3);
        ov.clear_delta();
        assert_eq!(GraphView::len(&ov), 3);
        assert_eq!(GraphView::term_count(&ov), g.term_count());
        assert!(GraphView::lookup_iri(&ov, "http://e/x").is_none());
    }

    #[test]
    fn overlay_over_overlay_stacks() {
        let g = base();
        let mut inner = Overlay::new(&g);
        inner.insert_iris("http://e/c", "http://e/p", "http://e/d");
        let mut outer = Overlay::new(&inner);
        outer.insert_iris("http://e/d", "http://e/p", "http://e/e");
        assert_eq!(GraphView::len(&outer), 5);
        let d = GraphView::lookup_iri(&outer, "http://e/d").unwrap();
        let p = GraphView::lookup_iri(&outer, "http://e/p").unwrap();
        let e = GraphView::lookup_iri(&outer, "http://e/e").unwrap();
        assert!(GraphView::contains_ids(&outer, d, p, e));
        // Inner delta visible through the outer view.
        let c = GraphView::lookup_iri(&outer, "http://e/c").unwrap();
        assert!(GraphView::contains_ids(&outer, c, p, d));
    }

    #[test]
    fn list_round_trip_through_overlay() {
        let g = base();
        let mut ov = Overlay::new(&g);
        let items: Vec<_> = (0..4)
            .map(|i| ov.intern_iri(&format!("http://e/i{i}")))
            .collect();
        let head = ov.write_list(&items);
        assert_eq!(GraphView::read_list(&ov, head), Some(items));
    }

    #[test]
    fn instances_of_sees_both_layers() {
        let g = base();
        let mut ov = Overlay::new(&g);
        ov.insert_iris("http://e/z", rdf::TYPE, "http://e/C");
        let class = GraphView::lookup_iri(&ov, "http://e/C").unwrap();
        assert_eq!(GraphView::instances_of(&ov, class).len(), 2);
    }
}
