//! Execution governor: budgets, deadlines, and cooperative cancellation.
//!
//! Production triple stores treat query limits and typed resource-limit
//! errors as table stakes — a single pathological ontology or query must
//! not take the whole engine down. This module is the shared vocabulary
//! for that contract across the workspace: a [`Budget`] describes the
//! resources one execution may consume, a [`Guard`] is the live meter the
//! hot loops of the Turtle/N-Triples parsers, the OWL materializer, and
//! the SPARQL evaluator all check, and [`Exhausted`] is the typed error
//! every layer returns instead of looping or panicking when a limit trips.
//!
//! The guard is designed to cost (almost) nothing on the happy path:
//! counter bumps are relaxed atomic increments, and the wall clock is
//! only consulted every [`TIME_CHECK_INTERVAL`] ticks. A guard started
//! from an unlimited budget short-circuits every check. Because the
//! counters are atomics the guard is `Sync`: the parallel execution
//! paths (see [`crate::pool`]) share one `&Guard` across worker threads
//! so a budget covers the whole execution, not one thread's slice.
//!
//! ```
//! use std::time::Duration;
//! use feo_rdf::governor::{Budget, Resource};
//!
//! let budget = Budget::new()
//!     .with_deadline(Duration::from_millis(50))
//!     .with_max_inferred(10_000);
//! let guard = budget.start();
//! assert!(guard.add_inferred(9_999).is_ok());
//! let err = guard.add_inferred(2).unwrap_err();
//! assert_eq!(err.resource, Resource::InferredTriples);
//! ```

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many guard ticks elapse between actual wall-clock reads.
/// `Instant::now()` is a syscall-ish operation; amortizing it keeps the
/// governor's happy-path overhead under the workspace's 2% target.
pub const TIME_CHECK_INTERVAL: u64 = 256;

/// The resource whose budget tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resource {
    /// The wall-clock deadline passed.
    WallClock,
    /// The materializer derived more triples than allowed.
    InferredTriples,
    /// The reasoner's fixpoint used more outer rounds than allowed.
    Rounds,
    /// The query evaluator produced more join rows / solutions than
    /// allowed.
    Solutions,
    /// An input document exceeded the size cap before parsing began.
    InputSize,
    /// The shared cancellation flag was raised.
    Cancelled,
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Resource::WallClock => "wall-clock deadline",
            Resource::InferredTriples => "inferred-triple budget",
            Resource::Rounds => "fixpoint-round budget",
            Resource::Solutions => "solution budget",
            Resource::InputSize => "input-size cap",
            Resource::Cancelled => "cancellation",
        })
    }
}

/// A budget tripped: `spent` of `limit` units of `resource` were used.
///
/// For [`Resource::WallClock`] the units are milliseconds; for
/// [`Resource::Cancelled`] both figures are zero (there is nothing to
/// count).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exhausted {
    pub resource: Resource,
    pub spent: u64,
    pub limit: u64,
}

impl fmt::Display for Exhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.resource {
            Resource::Cancelled => write!(f, "execution cancelled"),
            Resource::WallClock => write!(
                f,
                "{} exhausted: {} ms spent of {} ms allowed",
                self.resource, self.spent, self.limit
            ),
            _ => write!(
                f,
                "{} exhausted: {} spent of {} allowed",
                self.resource, self.spent, self.limit
            ),
        }
    }
}

impl std::error::Error for Exhausted {}

/// A cloneable cancellation flag shared between a running execution and
/// whoever may want to stop it (another thread, a timeout reaper, a
/// request handler whose client disconnected).
#[derive(Debug, Clone, Default)]
pub struct CancelFlag(Arc<AtomicBool>);

impl CancelFlag {
    pub fn new() -> Self {
        CancelFlag::default()
    }

    /// Raises the flag; every guard sharing it trips with
    /// [`Resource::Cancelled`] at its next check.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Declarative resource limits for one execution. `None` means
/// unlimited. Construct with [`Budget::new`] (unlimited) and narrow with
/// the `with_*` builders; call [`Budget::start`] to obtain the live
/// [`Guard`] the pipeline layers check.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    pub deadline: Option<Duration>,
    pub max_inferred: Option<u64>,
    pub max_rounds: Option<u64>,
    pub max_solutions: Option<u64>,
    pub max_input_bytes: Option<u64>,
    pub cancel: Option<CancelFlag>,
}

impl Budget {
    /// An unlimited budget: every check is a no-op.
    pub fn new() -> Self {
        Budget::default()
    }

    /// Wall-clock deadline for the whole execution (reasoning + queries).
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Cap on triples the materializer may derive.
    pub fn with_max_inferred(mut self, n: u64) -> Self {
        self.max_inferred = Some(n);
        self
    }

    /// Cap on reasoner fixpoint rounds.
    pub fn with_max_rounds(mut self, n: u64) -> Self {
        self.max_rounds = Some(n);
        self
    }

    /// Cap on join rows / solutions the SPARQL evaluator may produce.
    pub fn with_max_solutions(mut self, n: u64) -> Self {
        self.max_solutions = Some(n);
        self
    }

    /// Cap on the byte length of parsed input documents.
    pub fn with_max_input_bytes(mut self, n: u64) -> Self {
        self.max_input_bytes = Some(n);
        self
    }

    /// Attaches a shared cancellation flag.
    pub fn with_cancel(mut self, flag: CancelFlag) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// True when no limit is set and no cancel flag is attached.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.max_inferred.is_none()
            && self.max_rounds.is_none()
            && self.max_solutions.is_none()
            && self.max_input_bytes.is_none()
            && self.cancel.is_none()
    }

    /// Starts the clock and returns the live guard for this execution.
    pub fn start(&self) -> Guard {
        let now = Instant::now();
        Guard {
            started: now,
            deadline: self.deadline,
            max_inferred: self.max_inferred,
            max_rounds: self.max_rounds,
            max_solutions: self.max_solutions,
            max_input_bytes: self.max_input_bytes,
            cancel: self.cancel.clone(),
            unlimited: self.is_unlimited(),
            inferred: AtomicU64::new(0),
            rounds: AtomicU64::new(0),
            solutions: AtomicU64::new(0),
            ticks: AtomicU64::new(0),
        }
    }
}

/// The live meter for one execution, shared by reference across every
/// pipeline layer (parser → reasoner → evaluator). Counters are relaxed
/// atomics so read-only evaluation paths can tick through `&Guard` and
/// the parallel paths can charge one shared guard from several worker
/// threads: totals stay exact under concurrent charging, and whichever
/// thread pushes a counter past its limit observes the trip. Cooperative
/// cross-thread interruption additionally goes through the
/// [`CancelFlag`].
#[derive(Debug)]
pub struct Guard {
    started: Instant,
    deadline: Option<Duration>,
    max_inferred: Option<u64>,
    max_rounds: Option<u64>,
    max_solutions: Option<u64>,
    max_input_bytes: Option<u64>,
    cancel: Option<CancelFlag>,
    unlimited: bool,
    inferred: AtomicU64,
    rounds: AtomicU64,
    solutions: AtomicU64,
    ticks: AtomicU64,
}

impl Default for Guard {
    /// An unlimited guard (every check is a no-op).
    fn default() -> Self {
        Budget::new().start()
    }
}

impl Guard {
    /// Cheap hot-loop check: bumps the tick counter and consults the
    /// wall clock / cancel flag only every [`TIME_CHECK_INTERVAL`] ticks.
    #[inline]
    pub fn check_time(&self) -> Result<(), Exhausted> {
        if self.unlimited {
            return Ok(());
        }
        let t = self.ticks.fetch_add(1, Ordering::Relaxed).wrapping_add(1);
        if !t.is_multiple_of(TIME_CHECK_INTERVAL) {
            return Ok(());
        }
        self.check_time_now()
    }

    /// Unamortized check: consults the wall clock and cancel flag
    /// immediately. Use at coarse boundaries (per statement, per round,
    /// per query) where the call frequency is low.
    pub fn check_time_now(&self) -> Result<(), Exhausted> {
        if self.unlimited {
            return Ok(());
        }
        if let Some(flag) = &self.cancel {
            if flag.is_cancelled() {
                return Err(Exhausted {
                    resource: Resource::Cancelled,
                    spent: 0,
                    limit: 0,
                });
            }
        }
        if let Some(deadline) = self.deadline {
            let elapsed = self.started.elapsed();
            if elapsed > deadline {
                return Err(Exhausted {
                    resource: Resource::WallClock,
                    spent: elapsed.as_millis() as u64,
                    limit: deadline.as_millis() as u64,
                });
            }
        }
        Ok(())
    }

    /// Records `n` newly inferred triples; trips on the inference budget
    /// and (amortized) on the deadline.
    #[inline]
    pub fn add_inferred(&self, n: u64) -> Result<(), Exhausted> {
        if self.unlimited {
            return Ok(());
        }
        let total = self.inferred.fetch_add(n, Ordering::Relaxed) + n;
        if let Some(limit) = self.max_inferred {
            if total > limit {
                return Err(Exhausted {
                    resource: Resource::InferredTriples,
                    spent: total,
                    limit,
                });
            }
        }
        self.check_time()
    }

    /// Records one fixpoint round; trips on the round budget and checks
    /// the clock unamortized (rounds are coarse).
    pub fn add_round(&self) -> Result<(), Exhausted> {
        if self.unlimited {
            return Ok(());
        }
        let total = self.rounds.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(limit) = self.max_rounds {
            if total > limit {
                return Err(Exhausted {
                    resource: Resource::Rounds,
                    spent: total,
                    limit,
                });
            }
        }
        self.check_time_now()
    }

    /// Records `n` join rows / solutions produced by the evaluator;
    /// trips on the solution budget and (amortized) on the deadline.
    #[inline]
    pub fn add_solutions(&self, n: u64) -> Result<(), Exhausted> {
        if self.unlimited {
            return Ok(());
        }
        let total = self.solutions.fetch_add(n, Ordering::Relaxed) + n;
        if let Some(limit) = self.max_solutions {
            if total > limit {
                return Err(Exhausted {
                    resource: Resource::Solutions,
                    spent: total,
                    limit,
                });
            }
        }
        self.check_time()
    }

    /// Checks an input document's byte length against the input cap.
    pub fn check_input(&self, bytes: usize) -> Result<(), Exhausted> {
        if let Some(limit) = self.max_input_bytes {
            if bytes as u64 > limit {
                return Err(Exhausted {
                    resource: Resource::InputSize,
                    spent: bytes as u64,
                    limit,
                });
            }
        }
        self.check_time_now()
    }

    /// Wall-clock time since [`Budget::start`].
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    pub fn inferred_spent(&self) -> u64 {
        self.inferred.load(Ordering::Relaxed)
    }

    pub fn rounds_spent(&self) -> u64 {
        self.rounds.load(Ordering::Relaxed)
    }

    pub fn solutions_spent(&self) -> u64 {
        self.solutions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let guard = Budget::new().start();
        for _ in 0..10_000 {
            assert!(guard.check_time().is_ok());
            assert!(guard.add_inferred(1_000).is_ok());
            assert!(guard.add_solutions(1_000).is_ok());
        }
        assert!(guard.add_round().is_ok());
        assert!(guard.check_input(usize::MAX).is_ok());
    }

    #[test]
    fn inferred_budget_trips_with_counts() {
        let guard = Budget::new().with_max_inferred(10).start();
        assert!(guard.add_inferred(10).is_ok());
        let err = guard.add_inferred(5).unwrap_err();
        assert_eq!(err.resource, Resource::InferredTriples);
        assert_eq!(err.spent, 15);
        assert_eq!(err.limit, 10);
    }

    #[test]
    fn round_budget_trips() {
        let guard = Budget::new().with_max_rounds(2).start();
        assert!(guard.add_round().is_ok());
        assert!(guard.add_round().is_ok());
        let err = guard.add_round().unwrap_err();
        assert_eq!(err.resource, Resource::Rounds);
    }

    #[test]
    fn solutions_budget_trips() {
        let guard = Budget::new().with_max_solutions(100).start();
        assert!(guard.add_solutions(100).is_ok());
        let err = guard.add_solutions(1).unwrap_err();
        assert_eq!(err.resource, Resource::Solutions);
    }

    #[test]
    fn input_cap_trips_before_parsing() {
        let guard = Budget::new().with_max_input_bytes(16).start();
        assert!(guard.check_input(16).is_ok());
        let err = guard.check_input(17).unwrap_err();
        assert_eq!(err.resource, Resource::InputSize);
    }

    #[test]
    fn deadline_trips_once_elapsed() {
        let guard = Budget::new()
            .with_deadline(Duration::from_millis(0))
            .start();
        std::thread::sleep(Duration::from_millis(2));
        let err = guard.check_time_now().unwrap_err();
        assert_eq!(err.resource, Resource::WallClock);
        // The amortized path reaches the same verdict within one
        // interval's worth of ticks.
        let mut tripped = false;
        for _ in 0..=TIME_CHECK_INTERVAL {
            if guard.check_time().is_err() {
                tripped = true;
                break;
            }
        }
        assert!(tripped);
    }

    #[test]
    fn cancellation_is_shared_across_clones() {
        let flag = CancelFlag::new();
        let guard = Budget::new().with_cancel(flag.clone()).start();
        assert!(guard.check_time_now().is_ok());
        let remote = flag.clone();
        remote.cancel();
        let err = guard.check_time_now().unwrap_err();
        assert_eq!(err.resource, Resource::Cancelled);
    }

    #[test]
    fn display_names_the_resource() {
        let e = Exhausted {
            resource: Resource::Solutions,
            spent: 101,
            limit: 100,
        };
        let s = e.to_string();
        assert!(s.contains("solution budget"), "{s}");
        assert!(s.contains("101"), "{s}");
    }
}
