//! Robustness: the Turtle and N-Triples parsers must never panic on
//! arbitrary input — they either parse or return a located error.

use feo_rdf::governor::Budget;
use feo_rdf::ntriples::parse_ntriples;
use feo_rdf::turtle::parse_turtle;
use feo_rdf::{ParseOptions, RdfError};
use proptest::prelude::*;

const VALID_TURTLE: &str = "@prefix e: <http://e/> .\n\
     e:a a e:Food ; e:p \"v\"@en , 42 .\n\
     e:b e:q (e:x e:y) .\n\
     [ e:r e:z ] .";

const VALID_NTRIPLES: &str = "<http://e/a> <http://e/p> <http://e/b> .\n\
     <http://e/a> <http://e/q> \"lit\"^^<http://www.w3.org/2001/XMLSchema#string> .\n\
     _:b0 <http://e/r> \"x\"@en .";

const UNGUARDED: ParseOptions = ParseOptions { guard: None };

/// A parse error must carry a position inside (or one past) the input:
/// 1-based line within the document, column within that line.
fn assert_located(err: &RdfError, input: &str) {
    let RdfError::Syntax(err) = err else {
        panic!("unguarded parse cannot exhaust: {err:?}");
    };
    let lines: Vec<&str> = input.split('\n').collect();
    assert!(err.line >= 1, "line is 1-based: {err:?}");
    assert!(
        err.line <= lines.len().max(1),
        "line {} out of range for {} lines: {err:?}",
        err.line,
        lines.len()
    );
    let line_len = lines
        .get(err.line - 1)
        .map(|l| l.chars().count())
        .unwrap_or(0);
    assert!(err.column >= 1, "column is 1-based: {err:?}");
    assert!(
        err.column <= line_len + 1,
        "column {} out of range for line of {} chars: {err:?}",
        err.column,
        line_len
    );
}

fn splice(base: &str, cut: usize, del: usize, insert: &str) -> String {
    let mut s: Vec<char> = base.chars().collect();
    let pos = cut.min(s.len());
    let end = (pos + del).min(s.len());
    s.splice(pos..end, insert.chars());
    s.into_iter().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn turtle_never_panics_on_arbitrary_input(input in ".{0,200}") {
        let _ = parse_turtle(&input, &UNGUARDED);
    }

    #[test]
    fn turtle_never_panics_on_grammar_like_input(
        input in "[@<>\"'a-z:#._;,()\\[\\]\\\\ \n0-9-]{0,120}"
    ) {
        let _ = parse_turtle(&input, &UNGUARDED);
    }

    #[test]
    fn ntriples_never_panics(input in ".{0,200}") {
        let _ = parse_ntriples(&input, &UNGUARDED);
    }

    /// Near-valid documents: random mutations of a valid document must
    /// parse or fail cleanly, never panic or loop.
    #[test]
    fn mutated_valid_document(cut in 0usize..120, insert in ".{0,4}") {
        let mutated = splice(VALID_TURTLE, cut, 0, &insert);
        let _ = parse_turtle(&mutated, &UNGUARDED);
    }

    /// Deletion + insertion mutations of valid Turtle: every rejection
    /// must point at a real (line, column) inside the document.
    #[test]
    fn turtle_mutation_errors_are_located(
        cut in 0usize..120,
        del in 0usize..8,
        insert in "[@<>\"'a-z:#._;,()\\[\\]\\\\ \n0-9-]{0,6}"
    ) {
        let mutated = splice(VALID_TURTLE, cut, del, &insert);
        if let Err(e) = parse_turtle(&mutated, &UNGUARDED) {
            assert_located(&e, &mutated);
        }
    }

    /// Same contract for N-Triples: mutations never panic, and every
    /// error is located within the mutated document.
    #[test]
    fn ntriples_mutation_errors_are_located(
        cut in 0usize..160,
        del in 0usize..8,
        insert in "[<>\"'^_:@a-z#. \n0-9-]{0,6}"
    ) {
        let mutated = splice(VALID_NTRIPLES, cut, del, &insert);
        if let Err(e) = parse_ntriples(&mutated, &UNGUARDED) {
            assert_located(&e, &mutated);
        }
    }

    /// The guarded configuration shares the panic-freedom contract:
    /// under an unlimited guard it behaves exactly like the unguarded
    /// parse, and under a tiny input cap it returns a typed budget
    /// error instead of touching the document at all.
    #[test]
    fn guarded_parsers_never_panic(cut in 0usize..120, insert in ".{0,4}") {
        let mutated = splice(VALID_TURTLE, cut, 0, &insert);
        let unlimited = Budget::new().start();
        let plain = parse_turtle(&mutated, &UNGUARDED);
        let guarded = parse_turtle(&mutated, &ParseOptions { guard: Some(&unlimited) });
        assert_eq!(plain.is_ok(), guarded.is_ok());

        let capped = Budget::new().with_max_input_bytes(1).start();
        if mutated.len() > 1 {
            let res = parse_turtle(&mutated, &ParseOptions { guard: Some(&capped) });
            prop_assert!(matches!(res, Err(RdfError::Exhausted(_))));
        }
        let relimited = Budget::new().start();
        let _ = parse_ntriples(&mutated, &ParseOptions { guard: Some(&relimited) });
    }
}
