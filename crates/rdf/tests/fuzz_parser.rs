//! Robustness: the Turtle and N-Triples parsers must never panic on
//! arbitrary input — they either parse or return a located error.

use feo_rdf::ntriples::parse_ntriples;
use feo_rdf::turtle::parse_turtle;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn turtle_never_panics_on_arbitrary_input(input in ".{0,200}") {
        let _ = parse_turtle(&input);
    }

    #[test]
    fn turtle_never_panics_on_grammar_like_input(
        input in "[@<>\"'a-z:#._;,()\\[\\]\\\\ \n0-9-]{0,120}"
    ) {
        let _ = parse_turtle(&input);
    }

    #[test]
    fn ntriples_never_panics(input in ".{0,200}") {
        let _ = parse_ntriples(&input);
    }

    /// Near-valid documents: random mutations of a valid document must
    /// parse or fail cleanly, never panic or loop.
    #[test]
    fn mutated_valid_document(cut in 0usize..120, insert in ".{0,4}") {
        let valid = "@prefix e: <http://e/> .\n\
                     e:a a e:Food ; e:p \"v\"@en , 42 .\n\
                     e:b e:q (e:x e:y) .\n\
                     [ e:r e:z ] .";
        let mut s: Vec<char> = valid.chars().collect();
        let pos = cut.min(s.len());
        for (i, c) in insert.chars().enumerate() {
            s.insert(pos + i, c);
        }
        let mutated: String = s.into_iter().collect();
        let _ = parse_turtle(&mutated);
    }
}
