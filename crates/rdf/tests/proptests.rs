//! Property-based tests for the RDF substrate: index coherence under
//! arbitrary insert/remove interleavings, Turtle and N-Triples round-trips
//! for arbitrary term shapes, and interner stability.

use feo_rdf::graph::Graph;
use feo_rdf::ntriples::{parse_ntriples_into, write_ntriples};
use feo_rdf::term::{Iri, Literal, Term, Triple};
use feo_rdf::turtle::{parse_turtle_into, write_turtle};
use proptest::prelude::*;

/// A small pool of IRIs so triples collide often enough to exercise
/// deduplication and removal.
fn arb_iri() -> impl Strategy<Value = Term> {
    (0u8..12).prop_map(|i| Term::iri(format!("http://example.org/resource/r{i}")))
}

fn arb_literal() -> impl Strategy<Value = Term> {
    prop_oneof![
        // Avoid control chars the escaper does not cover; printable ASCII
        // plus a few multibyte chars is representative.
        "[ -~£é😀]{0,12}".prop_map(Term::simple),
        any::<i64>().prop_map(Term::integer),
        any::<bool>().prop_map(Term::boolean),
        ("[a-z]{1,8}", "[a-z]{2}").prop_map(|(s, tag)| Term::Literal(Literal::lang(s, tag))),
    ]
}

fn arb_object() -> impl Strategy<Value = Term> {
    prop_oneof![arb_iri(), arb_literal()]
}

fn arb_triple() -> impl Strategy<Value = Triple> {
    (arb_iri(), arb_iri(), arb_object()).prop_map(|(s, p, o)| Triple {
        subject: s,
        predicate: p,
        object: o,
    })
}

proptest! {
    #[test]
    fn indexes_stay_coherent_under_inserts_and_removes(
        ops in prop::collection::vec((arb_triple(), any::<bool>()), 0..120)
    ) {
        let mut g = Graph::new();
        let mut reference: std::collections::BTreeSet<Triple> = Default::default();
        for (t, insert) in ops {
            if insert {
                g.insert(&t);
                reference.insert(t);
            } else {
                g.remove(&t);
                reference.remove(&t);
            }
            prop_assert!(g.check_index_coherence());
        }
        prop_assert_eq!(g.len(), reference.len());
        for t in &reference {
            prop_assert!(g.contains(t));
        }
    }

    #[test]
    fn match_pattern_agrees_with_full_scan(
        triples in prop::collection::vec(arb_triple(), 1..60)
    ) {
        let mut g = Graph::new();
        for t in &triples {
            g.insert(t);
        }
        // For every stored triple, each of the 8 pattern shapes must find it.
        for [s, p, o] in g.iter_ids().collect::<Vec<_>>() {
            for mask in 0..8u8 {
                let ps = (mask & 1 != 0).then_some(s);
                let pp = (mask & 2 != 0).then_some(p);
                let po = (mask & 4 != 0).then_some(o);
                let found = g.match_pattern(ps, pp, po);
                prop_assert!(
                    found.contains(&[s, p, o]),
                    "pattern mask {mask} failed to find triple"
                );
                // And everything the pattern returns must satisfy it.
                for m in &found {
                    if let Some(x) = ps { prop_assert_eq!(m[0], x); }
                    if let Some(x) = pp { prop_assert_eq!(m[1], x); }
                    if let Some(x) = po { prop_assert_eq!(m[2], x); }
                    prop_assert!(g.contains_ids(m[0], m[1], m[2]));
                }
            }
        }
    }

    #[test]
    fn ntriples_round_trip(triples in prop::collection::vec(arb_triple(), 0..50)) {
        let mut g = Graph::new();
        for t in &triples {
            g.insert(t);
        }
        let nt = write_ntriples(&g);
        let mut g2 = Graph::new();
        parse_ntriples_into(&nt, &mut g2, &Default::default()).unwrap();
        prop_assert_eq!(g.len(), g2.len());
        for t in g.iter_triples() {
            prop_assert!(g2.contains(&t));
        }
    }

    #[test]
    fn turtle_round_trip_with_prefixes(triples in prop::collection::vec(arb_triple(), 0..50)) {
        let mut g = Graph::new();
        for t in &triples {
            g.insert(t);
        }
        let ttl = write_turtle(&g, &[("ex", "http://example.org/resource/")]);
        let mut g2 = Graph::new();
        parse_turtle_into(&ttl, &mut g2, &Default::default()).unwrap();
        prop_assert_eq!(g.len(), g2.len());
        for t in g.iter_triples() {
            prop_assert!(g2.contains(&t));
        }
    }

    #[test]
    fn interning_via_graph_is_stable(terms in prop::collection::vec(arb_object(), 1..60)) {
        let mut g = Graph::new();
        let ids: Vec<_> = terms.iter().map(|t| g.intern(t)).collect();
        // Re-interning yields identical ids and resolves to equal terms.
        for (t, &id) in terms.iter().zip(&ids) {
            prop_assert_eq!(g.intern(t), id);
            prop_assert_eq!(g.term(id), t);
            prop_assert_eq!(g.lookup(t), Some(id));
        }
    }

    #[test]
    fn literal_display_parses_back(lit in arb_literal()) {
        // Serialize one triple carrying the literal and parse it back.
        let mut g = Graph::new();
        g.insert_terms(
            Iri::new("http://example.org/s"),
            Iri::new("http://example.org/p"),
            lit.clone(),
        );
        let nt = write_ntriples(&g);
        let mut g2 = Graph::new();
        parse_ntriples_into(&nt, &mut g2, &Default::default()).unwrap();
        let got = g2.iter_triples().next().unwrap().object;
        prop_assert_eq!(got, lit);
    }
}
