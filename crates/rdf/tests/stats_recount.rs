//! Differential property test for [`GraphStats`] incremental
//! maintenance: after any interleaved sequence of inserts, removes, and
//! overlay commits (delta absorbed into the base), the incrementally
//! maintained counters must equal a from-scratch recount of the store.

use std::collections::{BTreeMap, BTreeSet};

use feo_rdf::vocab::rdf;
use feo_rdf::{Graph, GraphStore, Overlay};
use proptest::prelude::*;

/// A from-scratch recount of everything `GraphStats` tracks, keyed by
/// term id so it can be compared against the incremental counters.
#[derive(Debug, Default, PartialEq, Eq)]
struct Recount {
    total: u64,
    /// predicate → (triples, distinct subjects, distinct objects)
    predicates: BTreeMap<u32, (u64, u64, u64)>,
    /// class → rdf:type triple count
    classes: BTreeMap<u32, u64>,
}

fn recount(g: &Graph) -> Recount {
    let mut per_pred: BTreeMap<u32, (u64, BTreeSet<u32>, BTreeSet<u32>)> = BTreeMap::new();
    let mut classes: BTreeMap<u32, u64> = BTreeMap::new();
    let ty = g.lookup_iri(rdf::TYPE);
    let mut total = 0u64;
    for [s, p, o] in g.iter_ids() {
        total += 1;
        let e = per_pred.entry(p.index() as u32).or_default();
        e.0 += 1;
        e.1.insert(s.index() as u32);
        e.2.insert(o.index() as u32);
        if Some(p) == ty {
            *classes.entry(o.index() as u32).or_insert(0) += 1;
        }
    }
    Recount {
        total,
        predicates: per_pred
            .into_iter()
            .map(|(p, (n, ss, os))| (p, (n, ss.len() as u64, os.len() as u64)))
            .collect(),
        classes,
    }
}

/// Reads the incrementally-maintained stats into the same shape.
fn maintained(g: &Graph) -> Recount {
    let stats = g.stats();
    let mut predicates = BTreeMap::new();
    let mut classes = BTreeMap::new();
    // Probe every term id ever interned; ids are dense so this covers
    // every possible key the stat maps could hold.
    for (id, _) in g.iter_terms() {
        let raw = id.index() as u32;
        let ps = stats.predicate(id);
        if ps.triples > 0 || ps.distinct_subjects > 0 || ps.distinct_objects > 0 {
            predicates.insert(raw, (ps.triples, ps.distinct_subjects, ps.distinct_objects));
        }
        let n = stats.class_instances(id);
        if n > 0 {
            classes.insert(raw, n);
        }
    }
    Recount {
        total: stats.total_triples(),
        predicates,
        classes,
    }
}

/// Small closed vocabularies keep collision rates high enough that the
/// random walk actually exercises duplicate inserts, removals of absent
/// triples, last-subject/last-object transitions, and rdf:type churn.
fn node(i: u64) -> String {
    format!("http://e/n{}", i % 12)
}

fn pred(i: u64, type_bias: bool) -> String {
    if type_bias {
        rdf::TYPE.to_string()
    } else {
        format!("http://e/p{}", i % 4)
    }
}

/// Drives one random interleaving. Ops (from a u64 stream):
/// insert, remove, and "commit" — open an overlay, apply a few inserts
/// there, then merge the delta into the base store (intern spill in
/// order, insert delta), the raw-graph analogue of what the epoch
/// ledger freezes into a layer on `EngineBase::commit`.
fn run_walk(ops: &[u64]) -> Graph {
    let mut g = Graph::new();
    let mut i = ops.iter().copied();
    while let Some(op) = i.next() {
        let a = i.next().unwrap_or(1);
        let b = i.next().unwrap_or(2);
        match op % 4 {
            0 | 1 => {
                g.insert_iris(&node(a), &pred(b, a.is_multiple_of(3)), &node(a ^ b));
            }
            2 => {
                let t = feo_rdf::Triple::new(
                    feo_rdf::Term::iri(node(a)),
                    feo_rdf::Term::iri(pred(b, a.is_multiple_of(3))),
                    feo_rdf::Term::iri(node(a ^ b)),
                );
                g.remove(&t);
            }
            _ => {
                let mut ov = Overlay::new(&g);
                for k in 0..(b % 5) {
                    ov.insert_iris(
                        &node(a.wrapping_add(k)),
                        &pred(b.wrapping_add(k), k == 0),
                        // Mix in fresh spill terms so the commit also
                        // exercises dictionary growth on absorb.
                        &format!("http://e/s{}", (a ^ b).wrapping_add(k) % 20),
                    );
                }
                let (spill, delta) = ov.into_delta();
                for term in &spill {
                    g.intern(term);
                }
                for [s, p, o] in delta {
                    g.insert_ids(s, p, o);
                }
            }
        }
    }
    g
}

proptest! {
    #[test]
    fn stats_equal_recount_after_interleaved_ops(
        ops in prop::collection::vec(any::<u64>(), 0..400)
    ) {
        let g = run_walk(&ops);
        prop_assert_eq!(maintained(&g), recount(&g));
        prop_assert!(g.check_index_coherence());
    }

    #[test]
    fn stats_equal_recount_after_remove_everything(
        ops in prop::collection::vec(any::<u64>(), 0..200)
    ) {
        let mut g = run_walk(&ops);
        let all: Vec<_> = g.iter_ids().collect();
        for [s, p, o] in all {
            g.remove_ids(s, p, o);
        }
        let m = maintained(&g);
        prop_assert_eq!(m.total, 0);
        prop_assert!(m.predicates.is_empty());
        prop_assert!(m.classes.is_empty());
    }
}
