//! Robustness: the store's binary decoders must never panic on
//! arbitrary bytes — the same contract the Turtle/N-Triples fuzz suite
//! (`fuzz_parser.rs`) pins for text inputs, extended to the segment
//! and WAL formats. Every outcome is a clean parse or a typed
//! [`StoreError`]; mutations of *valid* files additionally must never
//! smuggle a wrong record past the checksums.

use std::path::PathBuf;

use feo_rdf::disk::{wal, Segment};
use feo_rdf::{DiskStore, StoreError, Term, WalRecord};
use proptest::prelude::*;

fn tmp_file(name: &str, case: u64) -> PathBuf {
    std::env::temp_dir().join(format!("feo-fuzz-{}-{name}-{case}.feo", std::process::id()))
}

fn sample_graph() -> feo_rdf::Graph {
    let mut g = feo_rdf::Graph::new();
    for i in 0..6 {
        g.insert_iris(
            &format!("http://e/s{i}"),
            "http://e/p",
            &format!("http://e/o{}", i % 2),
        );
    }
    g.insert_terms(
        Term::iri("http://e/s0"),
        Term::iri("http://e/label"),
        Term::simple("zero"),
    );
    g
}

fn sample_records() -> Vec<WalRecord> {
    (0..2u32)
        .map(|k| WalRecord {
            label: format!("layer{k}"),
            inferred: u64::from(k),
            terms: vec![Term::iri(format!("http://e/extra{k}"))],
            triples: vec![[0, 1, 2], [3, 1, k]],
        })
        .collect()
}

/// Valid on-disk bytes to mutate: one segment file, one WAL file.
fn valid_files() -> (Vec<u8>, Vec<u8>) {
    let g = sample_graph();
    let dir = std::env::temp_dir().join(format!("feo-fuzz-seed-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = DiskStore::save(&dir, &g, g.stats(), 1, &sample_records()).expect("save");
    let seg = std::fs::read(store.segment_path()).expect("segment readable");
    let log = std::fs::read(store.wal_path()).expect("wal readable");
    let _ = std::fs::remove_dir_all(&dir);
    (seg, log)
}

fn splice(base: &[u8], cut: usize, del: usize, insert: &[u8]) -> Vec<u8> {
    let pos = cut.min(base.len());
    let end = (pos + del).min(base.len());
    let mut out = Vec::with_capacity(base.len() + insert.len());
    out.extend_from_slice(&base[..pos]);
    out.extend_from_slice(insert);
    out.extend_from_slice(&base[end..]);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes never panic the WAL scanner; the outcome is a
    /// replay (possibly empty, possibly flagged) or a typed error.
    #[test]
    fn wal_parser_never_panics_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        match wal::parse_wal(&bytes) {
            Ok(replay) => prop_assert!(replay.valid_len as usize <= bytes.len()),
            Err(
                StoreError::BadMagic { .. }
                | StoreError::UnsupportedVersion { .. }
                | StoreError::Corrupt { .. }
                | StoreError::Truncated { .. }
                | StoreError::ChecksumMismatch { .. }
                | StoreError::Io { .. },
            ) => {}
        }
    }

    /// Mutations of a valid log never yield a record that was not
    /// committed: every replayed record is byte-equal to the original
    /// at its position (the per-record checksum stops the scan at the
    /// first damaged frame).
    #[test]
    fn mutated_wal_never_leaks_a_wrong_record(
        cut in 0usize..200,
        del in 0usize..8,
        insert in proptest::collection::vec(any::<u8>(), 0..8),
    ) {
        let (_, log) = valid_files();
        let originals = sample_records();
        let mutated = splice(&log, cut, del, &insert);
        if let Ok(replay) = wal::parse_wal(&mutated) {
            for (i, rec) in replay.records.iter().enumerate() {
                // More records than committed can only appear if the
                // mutation forged a checksummed frame — effectively
                // impossible; treat it as a failure if it ever happens.
                prop_assert!(i < originals.len(), "forged record appeared");
                prop_assert_eq!(rec, &originals[i], "record {} mutated silently", i);
            }
        }
    }

    /// Arbitrary bytes never panic the segment opener.
    #[test]
    fn segment_open_never_panics_on_arbitrary_bytes(
        case in 0u64..u64::MAX,
        bytes in proptest::collection::vec(any::<u8>(), 0..400),
    ) {
        let path = tmp_file("seg-arb", case);
        std::fs::write(&path, &bytes).expect("write fuzz file");
        let _ = Segment::open(&path, true);
        let _ = Segment::open(&path, false);
        let _ = std::fs::remove_file(&path);
    }

    /// Mutations of a valid segment never panic, and with checksum
    /// verification on they can only open if the bytes are unchanged.
    #[test]
    fn mutated_segment_never_panics(
        case in 0u64..u64::MAX,
        cut in 0usize..600,
        del in 0usize..8,
        insert in proptest::collection::vec(any::<u8>(), 0..8),
    ) {
        let (seg, _) = valid_files();
        let mutated = splice(&seg, cut, del, &insert);
        let path = tmp_file("seg-mut", case);
        std::fs::write(&path, &mutated).expect("write fuzz file");
        if Segment::open(&path, true).is_ok() {
            prop_assert_eq!(
                &mutated, &seg,
                "a checksum-verified open accepted altered bytes"
            );
        }
        let _ = std::fs::remove_file(&path);
    }
}
