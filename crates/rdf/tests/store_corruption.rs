//! Crash-recovery fault injection for the persistent store.
//!
//! The contract under test, exhaustively rather than by example:
//!
//! - **Segment damage is always a typed [`StoreError`]** — truncating
//!   the file to *every* possible length and flipping *every* byte
//!   must yield `Err(..)` from `Segment::open` / `DiskStore::open`,
//!   never a panic and never a silently different graph.
//! - **WAL tears recover to the exact intact prefix** — cutting the
//!   log at every byte replays precisely the records whose encoded
//!   bytes survived, reports the damage in `OpenedStore::recovered`,
//!   truncates the file back, and leaves a log that appends cleanly.
//! - **WAL bit flips stop replay at the flipped record** — the
//!   per-record checksum catches the flip; everything before it
//!   replays byte-identically, nothing after it leaks through.

use std::path::PathBuf;

use feo_rdf::disk::{wal, OpenOptions};
use feo_rdf::{DiskStore, GraphView, Segment, StoreError, Term, WalRecord};

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("feo-corrupt-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A small but structurally complete graph: IRIs, a literal, and a
/// blank node, so the dictionary exercises every term tag.
fn sample_graph() -> feo_rdf::Graph {
    let mut g = feo_rdf::Graph::new();
    for i in 0..8 {
        g.insert_iris(
            &format!("http://e/s{i}"),
            "http://e/p",
            &format!("http://e/o{}", i % 3),
        );
    }
    g.insert_terms(
        Term::iri("http://e/s0"),
        Term::iri("http://e/label"),
        Term::simple("zero"),
    );
    g.insert_terms(
        Term::bnode("b0"),
        Term::iri("http://e/p"),
        Term::iri("http://e/s1"),
    );
    g
}

fn wal_records(g: &feo_rdf::Graph) -> Vec<WalRecord> {
    let base = g.term_count() as u32;
    (0..3u32)
        .map(|k| WalRecord {
            label: format!("layer{k}"),
            inferred: u64::from(k),
            terms: vec![Term::iri(format!("http://e/extra{k}"))],
            triples: vec![[0, 1, base + k], [2, 1, base + k]],
        })
        .collect()
}

/// Byte length of the log holding the first `n` records (header
/// included) — the exact `valid_len` recovery must truncate back to.
fn prefix_len(records: &[WalRecord], n: usize) -> usize {
    8 + records[..n]
        .iter()
        .map(|r| wal::encode_record(r).len())
        .sum::<usize>()
}

// ---- segment damage ----------------------------------------------------

/// Truncating the segment to every possible length is a typed error —
/// never a panic, never a silently short graph.
#[test]
fn truncated_segment_is_typed_at_every_length() {
    let g = sample_graph();
    let dir = tmp_dir("seg-trunc");
    let store = DiskStore::save(&dir, &g, g.stats(), 0, &[]).expect("save");
    let path = store.segment_path();
    let full = std::fs::read(&path).expect("segment readable");

    for cut in 0..full.len() {
        std::fs::write(&path, &full[..cut]).expect("write truncation");
        let err = Segment::open(&path, true).expect_err("truncated segment must not open");
        assert!(
            matches!(
                err,
                StoreError::Truncated { .. }
                    | StoreError::ChecksumMismatch { .. }
                    | StoreError::Corrupt { .. }
                    | StoreError::BadMagic { .. }
                    | StoreError::UnsupportedVersion { .. }
            ),
            "cut at {cut}: unexpected error {err:?}"
        );
        // The store-level open surfaces the same typed failure.
        assert!(DiskStore::open(&dir, OpenOptions::default()).is_err());
    }

    // Restoring the bytes restores the store.
    std::fs::write(&path, &full).expect("restore");
    let opened = DiskStore::open(&dir, OpenOptions::default()).expect("restored store opens");
    assert_eq!(GraphView::len(&*opened.segment), g.len());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Flipping every byte of the segment is caught: the header fields
/// fail their own validation, everything after byte 16 fails the
/// whole-file checksum.
#[test]
fn bit_flipped_segment_is_typed_at_every_byte() {
    let g = sample_graph();
    let dir = tmp_dir("seg-flip");
    let store = DiskStore::save(&dir, &g, g.stats(), 0, &[]).expect("save");
    let path = store.segment_path();
    let full = std::fs::read(&path).expect("segment readable");

    for at in 0..full.len() {
        let mut bytes = full.clone();
        bytes[at] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("write flip");
        let err = Segment::open(&path, true).expect_err("flipped segment must not open");
        match at {
            0..=6 => assert!(
                matches!(err, StoreError::BadMagic { .. }),
                "flip at {at}: {err:?}"
            ),
            7 => assert!(
                matches!(err, StoreError::UnsupportedVersion { .. }),
                "flip at {at}: {err:?}"
            ),
            _ => assert!(
                matches!(
                    err,
                    StoreError::ChecksumMismatch { .. }
                        | StoreError::Truncated { .. }
                        | StoreError::Corrupt { .. }
                ),
                "flip at {at}: {err:?}"
            ),
        }
    }

    std::fs::write(&path, &full).expect("restore");
    assert!(DiskStore::open(&dir, OpenOptions::default()).is_ok());
    let _ = std::fs::remove_dir_all(&dir);
}

/// With checksum verification off, structural validation still rejects
/// a truncated file — the offset tables promise bytes that are gone.
#[test]
fn structural_validation_holds_without_checksum() {
    let g = sample_graph();
    let dir = tmp_dir("seg-nockh");
    let store = DiskStore::save(&dir, &g, g.stats(), 0, &[]).expect("save");
    let path = store.segment_path();
    let full = std::fs::read(&path).expect("segment readable");
    let opts = OpenOptions {
        verify_checksum: false,
    };

    // Sanity: the unverified open works on intact bytes.
    assert!(DiskStore::open(&dir, opts).is_ok());
    for cut in [0, 7, 16, 47, full.len() / 2, full.len() - 1] {
        std::fs::write(&path, &full[..cut]).expect("write truncation");
        assert!(
            Segment::open(&path, false).is_err(),
            "cut at {cut} opened without checksum verification"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ---- WAL tears ---------------------------------------------------------

/// Tearing the log at every byte recovers exactly the records whose
/// encoded bytes survived — the differential crash-recovery contract.
#[test]
fn torn_wal_replays_exact_intact_prefix_at_every_cut() {
    let g = sample_graph();
    let records = wal_records(&g);
    let dir = tmp_dir("wal-tear");
    let store = DiskStore::save(&dir, &g, g.stats(), 0, &records).expect("save");
    let wal_path = store.wal_path();
    let full = std::fs::read(&wal_path).expect("wal readable");
    let boundaries: Vec<usize> = (0..=records.len())
        .map(|n| prefix_len(&records, n))
        .collect();
    assert_eq!(*boundaries.last().expect("nonempty"), full.len());

    for cut in 0..full.len() {
        std::fs::write(&wal_path, &full[..cut]).expect("write tear");
        let opened = DiskStore::open(&dir, OpenOptions::default()).expect("tear recovers");
        // How many whole records fit in `cut` bytes? (A sub-header cut
        // recovers as a fresh empty log: zero records.)
        let intact = boundaries
            .iter()
            .filter(|&&b| b <= cut)
            .count()
            .saturating_sub(1);
        assert_eq!(
            opened.records,
            records[..intact],
            "cut at {cut}: wrong replay prefix"
        );
        let mid_record = cut != boundaries[intact];
        assert_eq!(
            opened.recovered.is_some(),
            mid_record,
            "cut at {cut}: recovery flag"
        );
        // Recovery truncated the file back to the intact prefix, so a
        // second open is clean and byte-stable.
        let again = DiskStore::open(&dir, OpenOptions::default()).expect("post-repair open");
        assert!(again.recovered.is_none(), "cut at {cut}: repair not sticky");
        assert_eq!(again.records, records[..intact]);
        assert_eq!(
            std::fs::read(&wal_path).expect("wal readable").len(),
            boundaries[intact],
            "cut at {cut}: file not truncated to the intact prefix"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// After recovery, the log extends cleanly: append a fresh record and
/// the chain is exactly `intact prefix + new record`.
#[test]
fn recovered_wal_accepts_appends() {
    let g = sample_graph();
    let records = wal_records(&g);
    let dir = tmp_dir("wal-append");
    let store = DiskStore::save(&dir, &g, g.stats(), 0, &records).expect("save");
    let wal_path = store.wal_path();
    let full = std::fs::read(&wal_path).expect("wal readable");

    // Tear inside the final record.
    std::fs::write(&wal_path, &full[..full.len() - 5]).expect("write tear");
    let opened = DiskStore::open(&dir, OpenOptions::default()).expect("recovers");
    assert!(opened.recovered.is_some());
    assert_eq!(opened.records, records[..2]);

    let fresh = WalRecord {
        label: "post-crash".to_string(),
        inferred: 0,
        terms: Vec::new(),
        triples: vec![[0, 1, 2]],
    };
    opened
        .store
        .append_delta(&fresh)
        .expect("append after repair");
    let again = DiskStore::open(&dir, OpenOptions::default()).expect("opens");
    assert!(again.recovered.is_none());
    assert_eq!(again.records.len(), 3);
    assert_eq!(again.records[..2], records[..2]);
    assert_eq!(again.records[2], fresh);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---- WAL bit flips -----------------------------------------------------

/// Flipping any byte of the log either hard-fails the header (magic /
/// version) or stops replay at the flipped record with everything
/// before it byte-identical. A flip never yields a *wrong* record and
/// never panics.
#[test]
fn bit_flipped_wal_never_leaks_a_wrong_record() {
    let g = sample_graph();
    let records = wal_records(&g);
    let dir = tmp_dir("wal-flip");
    let store = DiskStore::save(&dir, &g, g.stats(), 0, &records).expect("save");
    let wal_path = store.wal_path();
    let full = std::fs::read(&wal_path).expect("wal readable");
    let boundaries: Vec<usize> = (0..=records.len())
        .map(|n| prefix_len(&records, n))
        .collect();

    for at in 0..full.len() {
        let mut bytes = full.clone();
        bytes[at] ^= 0xFF;
        std::fs::write(&wal_path, &bytes).expect("write flip");
        // Records wholly before the flipped byte must replay intact.
        let unaffected = boundaries
            .iter()
            .filter(|&&b| b <= at)
            .count()
            .saturating_sub(1);
        match DiskStore::open(&dir, OpenOptions::default()) {
            Ok(opened) => {
                assert!(
                    opened.records.len() <= records.len(),
                    "flip at {at}: extra records appeared"
                );
                assert!(
                    opened.records.len() >= unaffected.min(records.len()),
                    "flip at {at}: lost records before the flip"
                );
                for (i, rec) in opened.records.iter().enumerate() {
                    assert_eq!(rec, &records[i], "flip at {at}: record {i} mutated");
                }
                // A flip past the prefix was detected (flag set) unless
                // it corrupted a *length* field into a longer-but-valid
                // frame — impossible with per-record checksums.
                if opened.records.len() < records.len() {
                    assert!(
                        opened.recovered.is_some(),
                        "flip at {at}: silent record loss"
                    );
                }
            }
            // Header flips (magic/version) and checksummed-but-invalid
            // payloads are hard typed errors.
            Err(
                StoreError::BadMagic { .. }
                | StoreError::UnsupportedVersion { .. }
                | StoreError::Corrupt { .. }
                | StoreError::Truncated { .. }
                | StoreError::ChecksumMismatch { .. },
            ) => {}
            Err(other) => panic!("flip at {at}: unexpected error {other:?}"),
        }
        // Restore the pristine bytes for the next iteration (repair may
        // have truncated the file).
        std::fs::write(&wal_path, &full).expect("restore");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ---- cross-file damage -------------------------------------------------

/// Deleting either half of the pair, or the MANIFEST, is a typed error.
#[test]
fn missing_files_are_typed_errors() {
    let g = sample_graph();
    let dir = tmp_dir("missing");
    let store = DiskStore::save(&dir, &g, g.stats(), 0, &[]).expect("save");

    let seg = std::fs::read(store.segment_path()).expect("segment readable");
    let log = std::fs::read(store.wal_path()).expect("wal readable");
    std::fs::remove_file(store.segment_path()).expect("remove segment");
    assert!(matches!(
        DiskStore::open(&dir, OpenOptions::default()),
        Err(StoreError::Io { .. })
    ));
    std::fs::write(store.segment_path(), &seg).expect("restore segment");

    std::fs::remove_file(store.wal_path()).expect("remove wal");
    assert!(matches!(
        DiskStore::open(&dir, OpenOptions::default()),
        Err(StoreError::Io { .. })
    ));
    std::fs::write(store.wal_path(), &log).expect("restore wal");

    std::fs::remove_file(dir.join("MANIFEST")).expect("remove manifest");
    assert!(matches!(
        DiskStore::open(&dir, OpenOptions::default()),
        Err(StoreError::Io { .. })
    ));
    let _ = std::fs::remove_dir_all(&dir);
}
