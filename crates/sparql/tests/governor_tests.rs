//! Guarded-evaluation tests: the SPARQL engine under an execution
//! [`feo_rdf::governor::Budget`] must trip with typed
//! [`SparqlError::Exhausted`] errors instead of running away, and an
//! unlimited guard must be behaviorally invisible.

use std::time::Duration;

use feo_rdf::governor::{Budget, CancelFlag, Guard, Resource};
use feo_rdf::turtle::parse_turtle_into;
use feo_rdf::Graph;
use feo_sparql::{query, QueryOptions, SparqlError};

fn graph(src: &str) -> Graph {
    let mut g = Graph::new();
    let prefixed = format!("@prefix e: <http://e/> .\n{src}");
    parse_turtle_into(&prefixed, &mut g, &Default::default()).expect("fixture turtle parses");
    g
}

fn chain_graph(len: usize) -> Graph {
    let mut src = String::new();
    for i in 0..len {
        src.push_str(&format!("e:n{} e:p e:n{} .\n", i, i + 1));
    }
    graph(&src)
}

fn expect_exhausted(err: SparqlError, resource: Resource) {
    match err {
        SparqlError::Exhausted(e) => assert_eq!(e.resource, resource, "{e}"),
        other => panic!("expected Exhausted({resource:?}), got {other:?}"),
    }
}

#[test]
fn input_cap_rejects_oversized_query_text() {
    let g = graph("e:a e:p e:b .");
    let guard = Budget::new().with_max_input_bytes(10).start();
    let err = query(
        &g,
        "SELECT ?s WHERE { ?s ?p ?o }",
        &QueryOptions::guarded(&guard),
    )
    .unwrap_err();
    expect_exhausted(err, Resource::InputSize);
}

#[test]
fn solution_budget_trips_on_cross_product() {
    // 8 triples joined with themselves twice: 512 join rows, far past
    // the 20-row budget.
    let g = chain_graph(8);
    let guard = Budget::new().with_max_solutions(20).start();
    let err = query(
        &g,
        "SELECT * WHERE { ?a ?p ?b . ?c ?q ?d . ?e ?r ?f }",
        &QueryOptions::guarded(&guard),
    )
    .unwrap_err();
    expect_exhausted(err, Resource::Solutions);
    assert!(guard.solutions_spent() > 20);
}

#[test]
fn solution_budget_with_headroom_matches_unguarded() {
    let g = chain_graph(8);
    let q = "PREFIX e: <http://e/> SELECT ?a ?b WHERE { ?a e:p ?b }";
    let unguarded = query(&g, q, &Default::default())
        .unwrap()
        .expect_solutions();
    let guard = Budget::new().with_max_solutions(1_000).start();
    let guarded = query(&g, q, &QueryOptions::guarded(&guard))
        .unwrap()
        .expect_solutions();
    assert_eq!(unguarded.len(), guarded.len());
}

#[test]
fn unlimited_guard_is_transparent() {
    let g = chain_graph(8);
    let q = "PREFIX e: <http://e/> SELECT ?a WHERE { ?a e:p+ ?b } ORDER BY ?a";
    let unguarded = query(&g, q, &Default::default())
        .unwrap()
        .expect_solutions();
    let guarded = query(&g, q, &QueryOptions::guarded(&Guard::default()))
        .unwrap()
        .expect_solutions();
    assert_eq!(unguarded.local_rows(), guarded.local_rows());
}

#[test]
fn cancellation_stops_evaluation() {
    let g = chain_graph(8);
    let flag = CancelFlag::new();
    flag.cancel();
    let guard = Budget::new().with_cancel(flag).start();
    let err = query(
        &g,
        "SELECT ?s WHERE { ?s ?p ?o }",
        &QueryOptions::guarded(&guard),
    )
    .unwrap_err();
    expect_exhausted(err, Resource::Cancelled);
}

#[test]
fn expired_deadline_stops_path_closure() {
    // A long chain queried with a transitive path generates enough
    // closure work to pass the guard's amortized time-check interval.
    let g = chain_graph(400);
    let guard = Budget::new().with_deadline(Duration::ZERO).start();
    std::thread::sleep(Duration::from_millis(2));
    let err = query(
        &g,
        "PREFIX e: <http://e/> SELECT ?a ?b WHERE { ?a e:p+ ?b }",
        &QueryOptions::guarded(&guard),
    )
    .unwrap_err();
    expect_exhausted(err, Resource::WallClock);
}

#[test]
fn syntax_errors_stay_typed_under_guard() {
    let g = graph("e:a e:p e:b .");
    let guard = Guard::default();
    let err = query(&g, "SELECT WHERE {", &QueryOptions::guarded(&guard)).unwrap_err();
    assert!(matches!(err, SparqlError::Parse { .. }), "{err:?}");
}

// ---- regression coverage for converted panic sites ---------------------

#[test]
fn values_query_still_evaluates() {
    let g = graph("e:a e:p e:b . e:c e:p e:d .");
    let t = query(
        &g,
        "PREFIX e: <http://e/> SELECT ?s ?o WHERE { VALUES ?s { e:a e:c } ?s e:p ?o }",
        &Default::default(),
    )
    .unwrap()
    .expect_solutions();
    assert_eq!(t.len(), 2);
}

#[test]
fn select_expression_and_aggregate_projection_still_evaluate() {
    let g = graph("e:a e:v 1 . e:b e:v 2 . e:c e:v 3 .");
    let t = query(
        &g,
        "PREFIX e: <http://e/> SELECT (SUM(?n) AS ?total) WHERE { ?s e:v ?n }",
        &Default::default(),
    )
    .unwrap()
    .expect_solutions();
    assert_eq!(t.local_rows()[0][0], "6");
    let t = query(
        &g,
        "PREFIX e: <http://e/> SELECT (1 + 2 AS ?three) WHERE { }",
        &Default::default(),
    )
    .unwrap()
    .expect_solutions();
    assert_eq!(t.local_rows()[0][0], "3");
}

#[test]
fn bgp_reorder_handles_single_and_many_patterns() {
    let g = graph("e:a e:p e:b . e:b e:q e:c .");
    let t = query(
        &g,
        "PREFIX e: <http://e/> SELECT ?x ?z WHERE { ?x e:p ?y . ?y e:q ?z }",
        &Default::default(),
    )
    .unwrap()
    .expect_solutions();
    assert_eq!(t.len(), 1);
}

#[test]
fn literal_expression_parse_errors_are_positioned() {
    // Any parse failure inside an expression must be a positioned error,
    // never a panic.
    let g = graph("e:a e:p e:b .");
    let err = query(
        &g,
        "SELECT ?s WHERE { ?s ?p ?o FILTER(?o = ) }",
        &Default::default(),
    )
    .unwrap_err();
    match err {
        SparqlError::Parse { line, column, .. } => {
            assert!(line >= 1 && column >= 1);
        }
        other => panic!("expected Parse, got {other:?}"),
    }
}
