//! End-to-end evaluator tests: each test loads a small Turtle graph and
//! checks query results against hand-computed answers.

use feo_rdf::turtle::parse_turtle_into;
use feo_rdf::Graph;
use feo_sparql::{query, QueryResult, SolutionTable};

fn graph(src: &str) -> Graph {
    let mut g = Graph::new();
    let prefixed = format!(
        "@prefix e: <http://e/> .\n@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n{src}"
    );
    parse_turtle_into(&prefixed, &mut g, &Default::default()).expect("fixture turtle parses");
    g
}

fn select(g: &mut Graph, q: &str) -> SolutionTable {
    let full = format!(
        "PREFIX e: <http://e/>\nPREFIX xsd: <http://www.w3.org/2001/XMLSchema#>\nPREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>\n{q}"
    );
    query(g, &full, &Default::default())
        .expect("query evaluates")
        .expect_solutions()
}

fn food_graph() -> Graph {
    graph(
        r#"
        e:curry a e:Recipe ; e:hasIngredient e:cauliflower , e:potato ; e:calories 450 .
        e:soup a e:Recipe ; e:hasIngredient e:squash ; e:calories 300 .
        e:salad a e:Recipe ; e:hasIngredient e:lettuce ; e:calories 150 .
        e:cauliflower a e:Vegetable ; e:availableIn e:Autumn .
        e:squash a e:Vegetable ; e:availableIn e:Autumn , e:Winter .
        e:potato a e:Vegetable .
        e:lettuce a e:Vegetable ; e:availableIn e:Summer .
        e:alice e:likes e:curry ; e:name "Alice" .
        e:bob e:likes e:soup , e:salad ; e:name "Bob" .
        "#,
    )
}

#[test]
fn basic_bgp_join() {
    let mut g = food_graph();
    let t = select(
        &mut g,
        "SELECT ?r ?v WHERE { ?r a e:Recipe ; e:hasIngredient ?v . ?v e:availableIn e:Autumn }",
    );
    assert_eq!(t.len(), 2);
    assert!(t.contains_local("r", "curry"));
    assert!(t.contains_local("r", "soup"));
    assert!(!t.contains_local("r", "salad"));
}

#[test]
fn select_star_excludes_blank_slots() {
    let mut g = food_graph();
    let t = select(
        &mut g,
        "SELECT * WHERE { ?r e:hasIngredient [ a e:Vegetable ] }",
    );
    assert_eq!(t.vars, vec!["r"]);
    assert_eq!(t.len(), 4); // curry x2 ingredients, soup, salad
}

#[test]
fn optional_keeps_unmatched() {
    let mut g = food_graph();
    let t = select(
        &mut g,
        "SELECT ?v ?s WHERE { ?v a e:Vegetable . OPTIONAL { ?v e:availableIn ?s } }",
    );
    // potato has no season → one row with unbound ?s.
    let potato_rows: Vec<_> = t
        .rows
        .iter()
        .filter(|r| matches!(&r[0], Some(feo_rdf::Term::Iri(i)) if i.local_name() == "potato"))
        .collect();
    assert_eq!(potato_rows.len(), 1);
    assert!(potato_rows[0][1].is_none());
    // squash appears twice (two seasons).
    assert_eq!(
        t.rows
            .iter()
            .filter(|r| matches!(&r[0], Some(feo_rdf::Term::Iri(i)) if i.local_name() == "squash"))
            .count(),
        2
    );
}

#[test]
fn union_concatenates() {
    let mut g = food_graph();
    let t = select(
        &mut g,
        "SELECT ?x WHERE { { ?x e:availableIn e:Summer } UNION { ?x e:availableIn e:Winter } }",
    );
    assert_eq!(t.len(), 2);
    assert!(t.contains_local("x", "lettuce"));
    assert!(t.contains_local("x", "squash"));
}

#[test]
fn minus_removes_compatible() {
    let mut g = food_graph();
    let t = select(
        &mut g,
        "SELECT ?v WHERE { ?v a e:Vegetable . MINUS { ?v e:availableIn e:Autumn } }",
    );
    assert_eq!(t.len(), 2);
    assert!(t.contains_local("v", "potato"));
    assert!(t.contains_local("v", "lettuce"));
}

#[test]
fn filter_not_exists() {
    let mut g = food_graph();
    let t = select(
        &mut g,
        "SELECT ?v WHERE { ?v a e:Vegetable . FILTER NOT EXISTS { ?v e:availableIn ?s } }",
    );
    assert_eq!(t.len(), 1);
    assert!(t.contains_local("v", "potato"));
}

#[test]
fn filter_exists_positive() {
    let mut g = food_graph();
    let t = select(
        &mut g,
        "SELECT ?v WHERE { ?v a e:Vegetable . FILTER EXISTS { ?v e:availableIn e:Autumn } }",
    );
    assert_eq!(t.len(), 2);
}

#[test]
fn numeric_filters_and_arith() {
    let mut g = food_graph();
    let t = select(
        &mut g,
        "SELECT ?r WHERE { ?r e:calories ?c . FILTER (?c > 200 && ?c < 400) }",
    );
    assert_eq!(t.len(), 1);
    assert!(t.contains_local("r", "soup"));

    let t = select(
        &mut g,
        "SELECT ?r ?half WHERE { ?r e:calories ?c . BIND (?c / 2 AS ?half) . FILTER (?half >= 150) }",
    );
    assert_eq!(t.len(), 2);
}

#[test]
fn bind_extends_rows() {
    let mut g = food_graph();
    let t = select(
        &mut g,
        r#"SELECT ?n WHERE { BIND (CONCAT("user-", "alice") AS ?n) }"#,
    );
    assert_eq!(t.len(), 1);
    assert!(t.contains_local("n", "user-alice"));
}

#[test]
fn bind_of_constant_iri_like_paper_listings() {
    // Listing 1/2 pattern: BIND (feo:Question as ?question).
    let mut g = graph("e:q1 e:hasParameter e:curry .");
    let t = select(
        &mut g,
        "SELECT ?p WHERE { BIND (e:q1 AS ?q) . ?q e:hasParameter ?p }",
    );
    assert_eq!(t.len(), 1);
    assert!(t.contains_local("p", "curry"));
}

#[test]
fn values_single_var() {
    let mut g = food_graph();
    let t = select(
        &mut g,
        "SELECT ?r ?v WHERE { VALUES ?v { e:squash e:lettuce } ?r e:hasIngredient ?v }",
    );
    assert_eq!(t.len(), 2);
}

#[test]
fn values_multi_var_with_undef() {
    let mut g = food_graph();
    let t = select(
        &mut g,
        "SELECT ?r ?c WHERE { VALUES (?r ?c) { (e:soup UNDEF) (UNDEF 150) } ?r e:calories ?c }",
    );
    assert_eq!(t.len(), 2);
    assert!(t.contains_local("r", "soup"));
    assert!(t.contains_local("r", "salad"));
}

#[test]
fn distinct_and_limit_offset() {
    let mut g = food_graph();
    let t = select(
        &mut g,
        "SELECT DISTINCT ?season WHERE { ?v e:availableIn ?season }",
    );
    assert_eq!(t.len(), 3);
    let t = select(
        &mut g,
        "SELECT ?r WHERE { ?r a e:Recipe } ORDER BY ?r LIMIT 2",
    );
    assert_eq!(t.len(), 2);
    let t2 = select(
        &mut g,
        "SELECT ?r WHERE { ?r a e:Recipe } ORDER BY ?r LIMIT 2 OFFSET 2",
    );
    assert_eq!(t2.len(), 1);
}

#[test]
fn order_by_numeric_desc() {
    let mut g = food_graph();
    let t = select(
        &mut g,
        "SELECT ?r ?c WHERE { ?r e:calories ?c } ORDER BY DESC(?c)",
    );
    let rows = t.local_rows();
    assert_eq!(rows[0][0], "curry");
    assert_eq!(rows[2][0], "salad");
}

#[test]
fn property_path_sequence_and_alternative() {
    let mut g = food_graph();
    let t = select(
        &mut g,
        "SELECT ?u ?s WHERE { ?u e:likes/e:hasIngredient/e:availableIn ?s }",
    );
    // alice→curry→cauliflower→Autumn ; bob→soup→squash→{Autumn,Winter} ;
    // bob→salad→lettuce→Summer
    assert_eq!(t.len(), 4);

    let t = select(
        &mut g,
        "SELECT ?x WHERE { e:squash (e:availableIn|e:hasIngredient) ?x }",
    );
    assert_eq!(t.len(), 2);
}

#[test]
fn property_path_inverse() {
    let mut g = food_graph();
    let t = select(&mut g, "SELECT ?r WHERE { e:squash ^e:hasIngredient ?r }");
    assert_eq!(t.len(), 1);
    assert!(t.contains_local("r", "soup"));
}

#[test]
fn property_path_plus_transitive() {
    let mut g =
        graph("e:A rdfs:subClassOf e:B . e:B rdfs:subClassOf e:C . e:C rdfs:subClassOf e:D .");
    let t = select(&mut g, "SELECT ?sup WHERE { e:A (rdfs:subClassOf+) ?sup }");
    assert_eq!(t.len(), 3);
    let t = select(&mut g, "SELECT ?sup WHERE { e:A (rdfs:subClassOf*) ?sup }");
    assert_eq!(t.len(), 4, "zero-or-more includes A itself");
    let t = select(&mut g, "SELECT ?sub WHERE { ?sub (rdfs:subClassOf+) e:D }");
    assert_eq!(t.len(), 3, "bound object walks backward");
}

#[test]
fn property_path_zero_or_one() {
    let mut g = graph("e:A e:p e:B . e:B e:p e:C .");
    let t = select(&mut g, "SELECT ?x WHERE { e:A (e:p?) ?x }");
    assert_eq!(t.len(), 2); // A itself and B
}

#[test]
fn negated_property_set() {
    let mut g = graph("e:a e:p e:b . e:a e:q e:c .");
    let t = select(&mut g, "SELECT ?o WHERE { e:a !e:p ?o }");
    assert_eq!(t.len(), 1);
    assert!(t.contains_local("o", "c"));
}

#[test]
fn ask_queries() {
    let g = food_graph();
    assert!(query(
        &g,
        "PREFIX e: <http://e/> ASK { e:curry a e:Recipe }",
        &Default::default()
    )
    .unwrap()
    .expect_boolean());
    assert!(!query(
        &g,
        "PREFIX e: <http://e/> ASK { e:curry a e:Vegetable }",
        &Default::default()
    )
    .unwrap()
    .expect_boolean());
}

#[test]
fn construct_builds_graph() {
    let mut g = food_graph();
    let out = query(
        &mut g,
        "PREFIX e: <http://e/> CONSTRUCT { ?v e:inSeason ?s } WHERE { ?v e:availableIn ?s }",
        &Default::default(),
    )
    .unwrap()
    .expect_graph();
    assert_eq!(out.len(), 4);
    assert!(out.lookup_iri("http://e/inSeason").is_some());
}

#[test]
fn aggregates_count_avg_group() {
    let mut g = food_graph();
    let t = select(
        &mut g,
        "SELECT ?r (COUNT(?v) AS ?n) WHERE { ?r e:hasIngredient ?v } GROUP BY ?r ORDER BY DESC(?n)",
    );
    assert_eq!(t.len(), 3);
    let rows = t.local_rows();
    assert_eq!(rows[0], vec!["curry".to_string(), "2".to_string()]);

    let t = select(
        &mut g,
        "SELECT (AVG(?c) AS ?avg) (MAX(?c) AS ?max) (MIN(?c) AS ?min) (SUM(?c) AS ?sum) WHERE { ?r e:calories ?c }",
    );
    let rows = t.local_rows();
    assert_eq!(rows[0][0], "300.0");
    assert_eq!(rows[0][1], "450");
    assert_eq!(rows[0][2], "150");
    assert_eq!(rows[0][3], "900");
}

#[test]
fn having_filters_groups() {
    let mut g = food_graph();
    let t = select(
        &mut g,
        "SELECT ?u (COUNT(?r) AS ?n) WHERE { ?u e:likes ?r } GROUP BY ?u HAVING (COUNT(?r) > 1)",
    );
    assert_eq!(t.len(), 1);
    assert!(t.contains_local("u", "bob"));
}

#[test]
fn count_star_and_distinct() {
    let mut g = food_graph();
    let t = select(
        &mut g,
        "SELECT (COUNT(*) AS ?n) WHERE { ?s e:availableIn ?o }",
    );
    assert_eq!(t.local_rows()[0][0], "4");
    let t = select(
        &mut g,
        "SELECT (COUNT(DISTINCT ?o) AS ?n) WHERE { ?s e:availableIn ?o }",
    );
    assert_eq!(t.local_rows()[0][0], "3");
}

#[test]
fn group_concat() {
    let mut g = graph(r#"e:r e:tag "a" , "b" ."#);
    let t = select(
        &mut g,
        r#"SELECT (GROUP_CONCAT(?t ; SEPARATOR=",") AS ?tags) WHERE { e:r e:tag ?t }"#,
    );
    let cell = &t.local_rows()[0][0];
    assert!(cell == "a,b" || cell == "b,a");
}

#[test]
fn string_builtins() {
    let mut g = food_graph();
    let t = select(
        &mut g,
        r#"SELECT ?u WHERE { ?u e:name ?n . FILTER (STRSTARTS(?n, "A")) }"#,
    );
    assert_eq!(t.len(), 1);
    assert!(t.contains_local("u", "alice"));

    let t = select(
        &mut g,
        r#"SELECT ?u WHERE { ?u e:name ?n . FILTER (CONTAINS(LCASE(?n), "ob")) }"#,
    );
    assert!(t.contains_local("u", "bob"));

    let t = select(
        &mut g,
        r#"SELECT (STRLEN("hello") AS ?l) (UCASE("hi") AS ?u) (SUBSTR("potato", 2, 3) AS ?s) WHERE { }"#,
    );
    let r = t.local_rows();
    assert_eq!(
        r[0],
        vec!["5".to_string(), "HI".to_string(), "ota".to_string()]
    );
}

#[test]
fn regex_builtin() {
    let mut g = food_graph();
    let t = select(
        &mut g,
        r#"SELECT ?v WHERE { ?v a e:Vegetable . FILTER (REGEX(STR(?v), "pot|lett")) }"#,
    );
    assert_eq!(t.len(), 2);
    let t = select(
        &mut g,
        r#"SELECT ?u WHERE { ?u e:name ?n . FILTER (REGEX(?n, "^ali", "i")) }"#,
    );
    assert_eq!(t.len(), 1);
}

#[test]
fn str_lang_datatype() {
    let mut g = graph(r#"e:x e:label "plain" . e:y e:label "tagged"@fr . e:z e:num 5 ."#);
    let t = select(
        &mut g,
        r#"SELECT ?s WHERE { ?s e:label ?l . FILTER (LANG(?l) = "fr") }"#,
    );
    assert_eq!(t.len(), 1);
    assert!(t.contains_local("s", "y"));
    let t = select(
        &mut g,
        "SELECT ?s WHERE { ?s e:num ?n . FILTER (DATATYPE(?n) = xsd:integer) }",
    );
    assert_eq!(t.len(), 1);
}

#[test]
fn coalesce_if_bound() {
    let mut g = food_graph();
    let t = select(
        &mut g,
        r#"SELECT ?v ?state WHERE {
             ?v a e:Vegetable .
             OPTIONAL { ?v e:availableIn ?s }
             BIND (IF(BOUND(?s), "seasonal", "always") AS ?state)
           }"#,
    );
    let potato: Vec<_> = t
        .rows
        .iter()
        .filter(|r| matches!(&r[0], Some(feo_rdf::Term::Iri(i)) if i.local_name() == "potato"))
        .collect();
    assert_eq!(potato.len(), 1);
    assert!(
        matches!(&potato[0][1], Some(feo_rdf::Term::Literal(l)) if l.lexical_form() == "always")
    );
}

#[test]
fn in_and_not_in() {
    let mut g = food_graph();
    let t = select(
        &mut g,
        "SELECT ?r WHERE { ?r e:calories ?c . FILTER (?c IN (150, 450)) }",
    );
    assert_eq!(t.len(), 2);
    let t = select(
        &mut g,
        "SELECT ?r WHERE { ?r e:calories ?c . FILTER (?c NOT IN (150, 450)) }",
    );
    assert_eq!(t.len(), 1);
    assert!(t.contains_local("r", "soup"));
}

#[test]
fn nested_group_and_variable_predicate() {
    let mut g = food_graph();
    let t = select(&mut g, "SELECT DISTINCT ?p WHERE { e:curry ?p ?o }");
    assert_eq!(t.len(), 3); // rdf:type, hasIngredient, calories

    let t = select(
        &mut g,
        "SELECT ?v WHERE { { ?v a e:Vegetable } { ?v e:availableIn e:Autumn } }",
    );
    assert_eq!(t.len(), 2);
}

#[test]
fn sameterm_isiri_isliteral() {
    let mut g = food_graph();
    let t = select(
        &mut g,
        "SELECT ?o WHERE { e:alice e:likes ?o . FILTER (isIRI(?o)) }",
    );
    assert_eq!(t.len(), 1);
    let t = select(
        &mut g,
        "SELECT ?o WHERE { e:alice e:name ?o . FILTER (isLiteral(?o)) }",
    );
    assert_eq!(t.len(), 1);
    let t = select(
        &mut g,
        "SELECT ?a WHERE { ?a e:likes ?x . ?a e:likes ?y . FILTER (!SAMETERM(?x, ?y)) }",
    );
    assert_eq!(t.len(), 2); // bob with (soup,salad) and (salad,soup)
}

#[test]
fn filter_scopes_to_group() {
    // A filter inside an OPTIONAL applies within the optional group only.
    let mut g = food_graph();
    let t = select(
        &mut g,
        "SELECT ?r ?c WHERE { ?r a e:Recipe . OPTIONAL { ?r e:calories ?c . FILTER (?c > 400) } }",
    );
    assert_eq!(t.len(), 3, "all recipes kept");
    let bound: Vec<_> = t.rows.iter().filter(|r| r[1].is_some()).collect();
    assert_eq!(bound.len(), 1, "only curry keeps its calories binding");
}

#[test]
fn empty_where_yields_single_empty_solution() {
    let mut g = food_graph();
    let t = select(&mut g, "SELECT (1 + 1 AS ?two) WHERE { }");
    assert_eq!(t.len(), 1);
    assert_eq!(t.local_rows()[0][0], "2");
}

#[test]
fn error_value_drops_row_in_filter() {
    // Comparing an IRI numerically is an error → row dropped, not panic.
    let mut g = food_graph();
    let t = select(
        &mut g,
        "SELECT ?r WHERE { ?r a e:Recipe . FILTER (?r > 5) }",
    );
    assert_eq!(t.len(), 0);
}

#[test]
fn query_result_accessors() {
    let g = food_graph();
    let r = query(
        &g,
        "PREFIX e: <http://e/> SELECT ?r WHERE { ?r a e:Recipe }",
        &Default::default(),
    )
    .unwrap();
    assert!(matches!(r, QueryResult::Solutions(_)));
}
