//! Edge-case tests for the evaluator: operator corner cases the main
//! suite doesn't cover — REDUCED, nested OPTIONALs, pre-bound VALUES
//! joins, CONSTRUCT with blank-node templates, mixed-type ORDER BY,
//! error-value propagation in BIND, string aggregates, and negated
//! property sets with inverse members.

use feo_rdf::turtle::parse_turtle_into;
use feo_rdf::{Graph, Term};
use feo_sparql::{query, SolutionTable};

fn graph(src: &str) -> Graph {
    let mut g = Graph::new();
    let prefixed = format!("@prefix e: <http://e/> .\n{src}");
    parse_turtle_into(&prefixed, &mut g, &Default::default()).expect("fixture parses");
    g
}

fn select(g: &mut Graph, q: &str) -> SolutionTable {
    query(
        g,
        &format!("PREFIX e: <http://e/>\n{q}"),
        &Default::default(),
    )
    .expect("query evaluates")
    .expect_solutions()
}

#[test]
fn reduced_is_accepted_and_dedupes() {
    let mut g = graph("e:a e:p e:b . e:c e:p e:b .");
    let t = select(&mut g, "SELECT REDUCED ?o WHERE { ?s e:p ?o }");
    // Our REDUCED behaves like DISTINCT (allowed by spec).
    assert_eq!(t.len(), 1);
}

#[test]
fn nested_optionals() {
    let mut g = graph(
        "e:a e:p e:b .\n\
         e:b e:q e:c .\n\
         e:x e:p e:y .",
    );
    let t = select(
        &mut g,
        "SELECT ?s ?m ?o WHERE { ?s e:p ?m . OPTIONAL { ?m e:q ?o . OPTIONAL { ?o e:r ?z } } }",
    );
    assert_eq!(t.len(), 2);
    let bound_o = t.rows.iter().filter(|r| r[2].is_some()).count();
    assert_eq!(bound_o, 1);
}

#[test]
fn values_joins_prebound_variables() {
    let mut g = graph("e:a e:p e:b . e:c e:p e:d .");
    // VALUES after the triple pattern must act as a join filter.
    let t = select(&mut g, "SELECT ?s WHERE { ?s e:p ?o . VALUES ?s { e:a } }");
    assert_eq!(t.len(), 1);
    assert!(t.contains_local("s", "a"));
}

#[test]
fn construct_with_blank_template_mints_per_row() {
    let mut g = graph("e:a e:p e:b . e:c e:p e:d .");
    let out = query(
        &mut g,
        "PREFIX e: <http://e/> CONSTRUCT { ?s e:via [ e:to ?o ] } WHERE { ?s e:p ?o }",
        &Default::default(),
    )
    .unwrap()
    .expect_graph();
    // 2 rows × 2 template triples; blank nodes distinct per row.
    assert_eq!(out.len(), 4);
    let mut bnodes = std::collections::BTreeSet::new();
    for t in out.iter_triples() {
        if let Term::BlankNode(b) = &t.object {
            bnodes.insert(b.as_str().to_string());
        }
    }
    assert_eq!(bnodes.len(), 2, "one fresh bnode per solution");
}

#[test]
fn order_by_mixed_types_is_total() {
    let mut g = graph(r#"e:a e:v 10 . e:b e:v "text" . e:c e:v e:iri . e:d e:q e:x ."#);
    let t = select(
        &mut g,
        "SELECT ?s ?v WHERE { ?s ?p ?o . OPTIONAL { ?s e:v ?v } } ORDER BY ?v",
    );
    // Must not panic, unbound first.
    assert!(t.rows[0][1].is_none());
}

#[test]
fn bind_error_leaves_unbound() {
    let mut g = graph("e:a e:p e:b .");
    let t = select(
        &mut g,
        "SELECT ?s ?bad WHERE { ?s e:p ?o . BIND (?o + 1 AS ?bad) }",
    );
    assert_eq!(t.len(), 1);
    assert!(t.rows[0][1].is_none(), "IRI + 1 is an error → unbound");
}

#[test]
fn min_max_on_strings() {
    let mut g = graph(r#"e:a e:tag "pear" . e:a e:tag "apple" . e:a e:tag "melon" ."#);
    let t = select(
        &mut g,
        "SELECT (MIN(?t) AS ?min) (MAX(?t) AS ?max) WHERE { e:a e:tag ?t }",
    );
    let rows = t.local_rows();
    assert_eq!(rows[0][0], "apple");
    assert_eq!(rows[0][1], "pear");
}

#[test]
fn sample_returns_some_member() {
    let mut g = graph("e:a e:p e:b , e:c .");
    let t = select(&mut g, "SELECT (SAMPLE(?o) AS ?one) WHERE { e:a e:p ?o }");
    let v = &t.local_rows()[0][0];
    assert!(v == "b" || v == "c");
}

#[test]
fn group_concat_default_separator_is_space() {
    let mut g = graph(r#"e:a e:tag "x" ."#);
    let t = select(
        &mut g,
        "SELECT (GROUP_CONCAT(?t) AS ?all) WHERE { ?s e:tag ?t }",
    );
    assert_eq!(t.local_rows()[0][0], "x");
}

#[test]
fn negated_property_set_with_inverse() {
    let mut g = graph("e:a e:p e:b . e:c e:q e:a .");
    // !(^e:q) from a: steps reachable backwards by anything except q.
    let t = select(&mut g, "SELECT ?x WHERE { e:a !(e:nope|^e:q) ?x }");
    // Forward: any predicate not in {nope} → b. Inverse arm: predicates
    // into a not in {q} → none.
    assert_eq!(t.len(), 1);
    assert!(t.contains_local("x", "b"));
}

#[test]
fn zero_or_more_with_both_ends_bound() {
    let g = graph("e:a e:p e:b . e:b e:p e:c .");
    assert!(query(
        &g,
        "PREFIX e: <http://e/> ASK { e:a (e:p*) e:c }",
        &Default::default()
    )
    .unwrap()
    .expect_boolean());
    assert!(query(
        &g,
        "PREFIX e: <http://e/> ASK { e:a (e:p*) e:a }",
        &Default::default()
    )
    .unwrap()
    .expect_boolean());
    assert!(!query(
        &g,
        "PREFIX e: <http://e/> ASK { e:c (e:p+) e:a }",
        &Default::default()
    )
    .unwrap()
    .expect_boolean());
}

#[test]
fn minus_without_shared_vars_keeps_everything() {
    // Per spec, MINUS rows with disjoint domains are not compatible.
    let mut g = graph("e:a e:p e:b . e:x e:q e:y .");
    let t = select(
        &mut g,
        "SELECT ?s WHERE { ?s e:p ?o . MINUS { ?u e:q ?v } }",
    );
    assert_eq!(t.len(), 1);
}

#[test]
fn filter_references_optional_variable() {
    let mut g = graph("e:a e:p e:b . e:a e:v 5 . e:c e:p e:d .");
    let t = select(
        &mut g,
        "SELECT ?s WHERE { ?s e:p ?o . OPTIONAL { ?s e:v ?v } FILTER (!BOUND(?v) || ?v > 3) }",
    );
    assert_eq!(t.len(), 2);
}

#[test]
fn select_expression_over_aggregate_of_expression() {
    let mut g = graph("e:a e:v 2 . e:b e:v 4 .");
    let t = select(
        &mut g,
        "SELECT (SUM(?v) * 10 AS ?total) WHERE { ?s e:v ?v }",
    );
    assert_eq!(t.local_rows()[0][0], "60");
}

#[test]
fn langmatches_and_lang() {
    let mut g = graph(r#"e:a e:label "colour"@en-GB , "color"@en-US , "couleur"@fr ."#);
    let t = select(
        &mut g,
        r#"SELECT ?l WHERE { e:a e:label ?l . FILTER (LANGMATCHES(LANG(?l), "en")) }"#,
    );
    assert_eq!(t.len(), 2);
    let t = select(
        &mut g,
        r#"SELECT ?l WHERE { e:a e:label ?l . FILTER (LANGMATCHES(LANG(?l), "*")) }"#,
    );
    assert_eq!(t.len(), 3);
}

#[test]
fn strbefore_strafter_substr() {
    let mut g = graph("e:a e:p e:b .");
    let t = select(
        &mut g,
        r#"SELECT (STRBEFORE("butternut-squash", "-") AS ?b)
                  (STRAFTER("butternut-squash", "-") AS ?a)
           WHERE { }"#,
    );
    let r = t.local_rows();
    assert_eq!(r[0][0], "butternut");
    assert_eq!(r[0][1], "squash");
}

#[test]
fn concat_coerces_numbers() {
    let mut g = graph("e:a e:v 42 .");
    let t = select(
        &mut g,
        r#"SELECT (CONCAT("calories: ", STR(?v)) AS ?s) WHERE { e:a e:v ?v }"#,
    );
    assert_eq!(t.local_rows()[0][0], "calories: 42");
}

#[test]
fn variable_predicate_joins_with_path_elsewhere() {
    let mut g = graph("e:a e:p e:b . e:b e:q e:c .");
    let t = select(
        &mut g,
        "SELECT ?pred WHERE { e:a ?pred ?m . ?m (e:q+) e:c }",
    );
    assert_eq!(t.len(), 1);
    assert!(t.contains_local("pred", "p"));
}

#[test]
fn empty_group_in_union_arm() {
    let mut g = graph("e:a e:p e:b .");
    let t = select(
        &mut g,
        "SELECT ?s WHERE { { ?s e:p ?o } UNION { ?s e:missing ?o } }",
    );
    assert_eq!(t.len(), 1);
}

#[test]
fn deeply_nested_groups() {
    let mut g = graph("e:a e:p e:b . e:b e:q e:c .");
    let t = select(
        &mut g,
        "SELECT ?s WHERE { { { { ?s e:p ?m } . { ?m e:q ?o } } } }",
    );
    assert_eq!(t.len(), 1);
}
