//! Property tests for the SPARQL engine: algebraic laws that must hold
//! for any graph (DISTINCT idempotence, LIMIT/OFFSET slicing, UNION
//! commutativity up to multiset equality, FILTER-true identity, path
//! closure vs. repeated join), plus regex-lite differential checks
//! against a naive reference for a restricted pattern class.

use feo_rdf::Graph;
use feo_sparql::regexlite::Regex;
use feo_sparql::{query, SolutionTable};
use proptest::prelude::*;

/// Random small edge graphs over a fixed node set and two predicates.
fn arb_graph() -> impl Strategy<Value = Graph> {
    prop::collection::vec((0u8..8, prop::bool::ANY, 0u8..8), 0..30).prop_map(|edges| {
        let mut g = Graph::new();
        for (s, p, o) in edges {
            let pred = if p { "http://t/p" } else { "http://t/q" };
            g.insert_iris(&format!("http://t/n{s}"), pred, &format!("http://t/n{o}"));
        }
        g
    })
}

fn rows_sorted(t: &SolutionTable) -> Vec<String> {
    let mut rows: Vec<String> = t
        .rows
        .iter()
        .map(|r| {
            r.iter()
                .map(|c| c.as_ref().map(|t| t.to_string()).unwrap_or_default())
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect();
    rows.sort();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn distinct_is_idempotent_and_dedupes(g in arb_graph()) {
        let all = query(&g, "SELECT ?s ?o WHERE { ?s <http://t/p> ?o }", &Default::default())
            .unwrap().expect_solutions();
        let distinct = query(&g, "SELECT DISTINCT ?s ?o WHERE { ?s <http://t/p> ?o }", &Default::default())
            .unwrap().expect_solutions();
        // Distinct result is a set.
        let d = rows_sorted(&distinct);
        let mut dd = d.clone();
        dd.dedup();
        prop_assert_eq!(&d, &dd);
        // Same underlying set as the raw result.
        let mut a = rows_sorted(&all);
        a.dedup();
        prop_assert_eq!(a, d);
    }

    #[test]
    fn limit_offset_slice(g in arb_graph(), limit in 0usize..10, offset in 0usize..10) {
        let base = query(&g, "SELECT ?s ?o WHERE { ?s <http://t/p> ?o } ORDER BY ?s ?o", &Default::default())
            .unwrap().expect_solutions();
        let sliced = query(&g, &format!(
            "SELECT ?s ?o WHERE {{ ?s <http://t/p> ?o }} ORDER BY ?s ?o LIMIT {limit} OFFSET {offset}"
        ), &Default::default()).unwrap().expect_solutions();
        let expected: Vec<_> = base.rows.iter().skip(offset).take(limit).cloned().collect();
        prop_assert_eq!(sliced.rows, expected);
    }

    #[test]
    fn union_is_commutative_as_multiset(g in arb_graph()) {
        let ab = query(&g,
            "SELECT ?s ?o WHERE { { ?s <http://t/p> ?o } UNION { ?s <http://t/q> ?o } }",
            &Default::default())
            .unwrap().expect_solutions();
        let ba = query(&g,
            "SELECT ?s ?o WHERE { { ?s <http://t/q> ?o } UNION { ?s <http://t/p> ?o } }",
            &Default::default())
            .unwrap().expect_solutions();
        prop_assert_eq!(rows_sorted(&ab), rows_sorted(&ba));
    }

    #[test]
    fn filter_true_is_identity(g in arb_graph()) {
        let plain = query(&g, "SELECT ?s ?o WHERE { ?s <http://t/p> ?o }", &Default::default())
            .unwrap().expect_solutions();
        let filtered = query(&g, "SELECT ?s ?o WHERE { ?s <http://t/p> ?o . FILTER (1 = 1) }", &Default::default())
            .unwrap().expect_solutions();
        prop_assert_eq!(rows_sorted(&plain), rows_sorted(&filtered));
        let none = query(&g, "SELECT ?s ?o WHERE { ?s <http://t/p> ?o . FILTER (1 = 2) }", &Default::default())
            .unwrap().expect_solutions();
        prop_assert!(none.is_empty());
    }

    #[test]
    fn path_plus_equals_path_star_minus_zero_length(g in arb_graph()) {
        // p+ from a fixed start = p* minus the zero-length pair when the
        // start has no self-loop derivation.
        let plus = query(&g, "SELECT ?x WHERE { <http://t/n0> (<http://t/p>+) ?x }", &Default::default())
            .unwrap().expect_solutions();
        let star = query(&g, "SELECT ?x WHERE { <http://t/n0> (<http://t/p>*) ?x }", &Default::default())
            .unwrap().expect_solutions();
        let plus_set: std::collections::BTreeSet<_> = rows_sorted(&plus).into_iter().collect();
        let star_set: std::collections::BTreeSet<_> = rows_sorted(&star).into_iter().collect();
        // star ⊇ plus, and star \ plus ⊆ {n0}.
        prop_assert!(plus_set.is_subset(&star_set));
        for extra in star_set.difference(&plus_set) {
            prop_assert!(extra.contains("n0"), "unexpected star-only node {extra}");
        }
    }

    #[test]
    fn path_sequence_equals_join(g in arb_graph()) {
        let path = query(&g,
            "SELECT ?s ?o WHERE { ?s (<http://t/p>/<http://t/q>) ?o }",
            &Default::default())
            .unwrap().expect_solutions();
        let join = query(&g,
            "SELECT DISTINCT ?s ?o WHERE { ?s <http://t/p> ?m . ?m <http://t/q> ?o }",
            &Default::default())
            .unwrap().expect_solutions();
        prop_assert_eq!(rows_sorted(&path), rows_sorted(&join));
    }

    #[test]
    fn ask_agrees_with_select(g in arb_graph()) {
        let any = query(&g, "SELECT ?s WHERE { ?s <http://t/p> ?o } LIMIT 1", &Default::default())
            .unwrap().expect_solutions();
        let ask = query(&g, "ASK { ?s <http://t/p> ?o }", &Default::default())
            .unwrap().expect_boolean();
        prop_assert_eq!(ask, !any.is_empty());
    }

    #[test]
    fn count_matches_row_count(g in arb_graph()) {
        let rows = query(&g, "SELECT ?s ?o WHERE { ?s <http://t/p> ?o }", &Default::default())
            .unwrap().expect_solutions();
        let counted = query(&g, "SELECT (COUNT(*) AS ?n) WHERE { ?s <http://t/p> ?o }", &Default::default())
            .unwrap().expect_solutions();
        let n: i64 = counted.get(0, "n")
            .and_then(|t| t.as_literal())
            .and_then(|l| l.as_integer())
            .unwrap_or(-1);
        prop_assert_eq!(n, rows.len() as i64);
    }
}

// ---- regex-lite differential testing -----------------------------------

/// Reference matcher for patterns made of literals, '.', and a single
/// optional '*' on a literal — simple enough to verify by brute force.
fn arb_simple_pattern() -> impl Strategy<Value = String> {
    "[abc.]{1,5}".prop_map(|s| s)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn regex_literal_dot_matches_contains(pat in arb_simple_pattern(), text in "[abcd]{0,10}") {
        let re = Regex::new(&pat, "").unwrap();
        // Reference: substring search where '.' matches any char.
        let p: Vec<char> = pat.chars().collect();
        let t: Vec<char> = text.chars().collect();
        let mut reference = false;
        for start in 0..=t.len().saturating_sub(p.len()) {
            if t.len() >= p.len()
                && p.iter().enumerate().all(|(i, pc)| *pc == '.' || t[start + i] == *pc)
            {
                reference = true;
                break;
            }
        }
        if p.len() > t.len() {
            reference = false;
        }
        prop_assert_eq!(re.is_match(&text), reference, "pattern {} on {}", pat, text);
    }

    #[test]
    fn regex_star_never_panics(pat in "[ab]\\*?[ab]?", text in "[ab]{0,8}") {
        if let Ok(re) = Regex::new(&pat, "") {
            let _ = re.is_match(&text);
        }
    }
}
