//! Robustness: the SPARQL lexer/parser must never panic on arbitrary
//! input, and near-valid query mutations must fail cleanly.

use feo_sparql::parse_query;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn parser_never_panics_on_arbitrary_input(input in ".{0,200}") {
        let _ = parse_query(&input);
    }

    #[test]
    fn parser_never_panics_on_sparql_like_input(
        input in "[?$<>{}()\"'a-zA-Z:#._;,*+|^!=&\\- \n0-9]{0,150}"
    ) {
        let _ = parse_query(&input);
    }

    #[test]
    fn mutated_valid_query(cut in 0usize..150, insert in ".{0,4}") {
        let valid = "PREFIX e: <http://e/>\n\
                     SELECT DISTINCT ?a (COUNT(?b) AS ?n) WHERE {\n\
                       ?a e:p/e:q+ ?b .\n\
                       OPTIONAL { ?b e:r ?c }\n\
                       FILTER (?c > 3 && REGEX(STR(?a), \"x\"))\n\
                     } GROUP BY ?a ORDER BY DESC(?n) LIMIT 5";
        let mut s: Vec<char> = valid.chars().collect();
        let pos = cut.min(s.len());
        for (i, c) in insert.chars().enumerate() {
            s.insert(pos + i, c);
        }
        let mutated: String = s.into_iter().collect();
        let _ = parse_query(&mutated);
    }

    /// Evaluation of random (valid) SELECT shells over a small graph must
    /// never panic.
    #[test]
    fn eval_never_panics_on_random_filters(n in 0i64..100, cmp in 0usize..5) {
        let ops = ["=", "!=", "<", ">", ">="];
        let mut g = feo_rdf::Graph::new();
        g.insert_iris("http://e/a", "http://e/p", "http://e/b");
        let q = format!(
            "SELECT ?s WHERE {{ ?s <http://e/p> ?o . FILTER (STRLEN(STR(?s)) {} {n}) }}",
            ops[cmp]
        );
        let _ = feo_sparql::query(&g, &q, &Default::default());
    }
}
