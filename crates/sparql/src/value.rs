//! Runtime values for SPARQL expression evaluation.
//!
//! Expression evaluation operates on [`Value`]: either a graph term
//! (by id, keeping identity for `sameTerm` / `DATATYPE` / projection) or a
//! computed scalar. Typed interpretation of literal terms happens lazily
//! inside the operations that need it, following the SPARQL operator
//! mapping (numeric promotion, string comparison, effective boolean
//! value).

use feo_rdf::term::{Literal, Term};
use feo_rdf::vocab::xsd;
use feo_rdf::{GraphStore, GraphView, TermId};

/// An expression value. `Term` preserves identity; the scalar variants
/// are produced by operators and builtins.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Term(TermId),
    Bool(bool),
    Int(i64),
    /// Non-integer numeric (decimal/double collapsed).
    Num(f64),
    Str {
        s: String,
        lang: Option<String>,
    },
    /// A computed IRI (from `IRI(...)`).
    IriStr(String),
}

impl Value {
    /// Converts to a concrete [`Term`], interning computed scalars into
    /// the store's writable dictionary (the scratch spill, when `g` is an
    /// overlay over a read-only view).
    pub fn into_term_id(self, g: &mut impl GraphStore) -> TermId {
        match self {
            Value::Term(id) => id,
            Value::Bool(b) => g.intern(&Term::boolean(b)),
            Value::Int(i) => g.intern(&Term::integer(i)),
            Value::Num(n) => g.intern(&Term::Literal(Literal::typed(
                format_num(n),
                feo_rdf::Iri::new(xsd::DOUBLE),
            ))),
            Value::Str { s, lang } => match lang {
                Some(l) => g.intern(&Term::Literal(Literal::lang(s, l))),
                None => g.intern(&Term::simple(s)),
            },
            Value::IriStr(iri) => g.intern(&Term::iri(iri)),
        }
    }
}

fn format_num(n: f64) -> String {
    if n == n.trunc() && n.is_finite() && n.abs() < 1e15 {
        format!("{n:.1}")
    } else {
        format!("{n}")
    }
}

/// Numeric view of a value, if any.
pub fn as_numeric<G: GraphView + ?Sized>(g: &G, v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Num(n) => Some(*n),
        Value::Bool(_) | Value::Str { .. } | Value::IriStr(_) => None,
        Value::Term(id) => match g.term(*id) {
            Term::Literal(l) => l.as_double(),
            _ => None,
        },
    }
}

/// Integer view (used where SPARQL wants integers, e.g. SUBSTR).
pub fn as_integer<G: GraphView + ?Sized>(g: &G, v: &Value) -> Option<i64> {
    match v {
        Value::Int(i) => Some(*i),
        Value::Num(n) if n.fract() == 0.0 => Some(*n as i64),
        Value::Term(id) => match g.term(*id) {
            Term::Literal(l) => l.as_integer(),
            _ => None,
        },
        _ => None,
    }
}

/// String view: lexical form plus language tag. IRIs only stringify via
/// the explicit STR() builtin, not implicitly.
pub fn as_string<G: GraphView + ?Sized>(g: &G, v: &Value) -> Option<(String, Option<String>)> {
    match v {
        Value::Str { s, lang } => Some((s.clone(), lang.clone())),
        Value::Term(id) => match g.term(*id) {
            Term::Literal(l) if l.datatype().as_str() == xsd::STRING => {
                Some((l.lexical_form().to_string(), None))
            }
            Term::Literal(l) if l.language().is_some() => Some((
                l.lexical_form().to_string(),
                l.language().map(str::to_string),
            )),
            _ => None,
        },
        _ => None,
    }
}

/// The STR() builtin view: literals yield their lexical form, IRIs their
/// text.
pub fn str_builtin<G: GraphView + ?Sized>(g: &G, v: &Value) -> Option<String> {
    match v {
        Value::Str { s, .. } => Some(s.clone()),
        Value::IriStr(i) => Some(i.clone()),
        Value::Bool(b) => Some(b.to_string()),
        Value::Int(i) => Some(i.to_string()),
        Value::Num(n) => Some(format_num(*n)),
        Value::Term(id) => match g.term(*id) {
            Term::Iri(i) => Some(i.as_str().to_string()),
            Term::Literal(l) => Some(l.lexical_form().to_string()),
            Term::BlankNode(_) => None,
        },
    }
}

/// Boolean view, if directly boolean.
pub fn as_bool<G: GraphView + ?Sized>(g: &G, v: &Value) -> Option<bool> {
    match v {
        Value::Bool(b) => Some(*b),
        Value::Term(id) => match g.term(*id) {
            Term::Literal(l) => l.as_bool(),
            _ => None,
        },
        _ => None,
    }
}

/// SPARQL effective boolean value. `None` = type error.
pub fn ebv<G: GraphView + ?Sized>(g: &G, v: &Value) -> Option<bool> {
    match v {
        Value::Bool(b) => Some(*b),
        Value::Int(i) => Some(*i != 0),
        Value::Num(n) => Some(*n != 0.0 && !n.is_nan()),
        Value::Str { s, .. } => Some(!s.is_empty()),
        Value::IriStr(_) => None,
        Value::Term(id) => match g.term(*id) {
            Term::Literal(l) => {
                if let Some(b) = l.as_bool() {
                    Some(b)
                } else if l.is_numeric() {
                    l.as_double().map(|n| n != 0.0 && !n.is_nan())
                } else if l.datatype().as_str() == xsd::STRING || l.language().is_some() {
                    Some(!l.lexical_form().is_empty())
                } else {
                    None
                }
            }
            _ => None,
        },
    }
}

/// RDF-term / value equality for `=`. Returns `None` on incomparable
/// operands (propagates as an expression error).
pub fn values_equal<G: GraphView + ?Sized>(g: &G, a: &Value, b: &Value) -> Option<bool> {
    // Numeric comparison dominates when both sides are numeric.
    if let (Some(x), Some(y)) = (as_numeric(g, a), as_numeric(g, b)) {
        return Some(x == y);
    }
    if let (Some(x), Some(y)) = (as_bool(g, a), as_bool(g, b)) {
        return Some(x == y);
    }
    if let (Some((sa, la)), Some((sb, lb))) = (as_string(g, a), as_string(g, b)) {
        return Some(sa == sb && la == lb);
    }
    match (a, b) {
        (Value::Term(x), Value::Term(y)) => Some(x == y),
        (Value::IriStr(s), Value::Term(t)) | (Value::Term(t), Value::IriStr(s)) => {
            match g.term(*t) {
                Term::Iri(i) => Some(i.as_str() == s),
                _ => Some(false),
            }
        }
        (Value::IriStr(x), Value::IriStr(y)) => Some(x == y),
        _ => None,
    }
}

/// Order comparison for `<`/`>`: numeric, string (codepoint), or boolean.
pub fn values_compare<G: GraphView + ?Sized>(
    g: &G,
    a: &Value,
    b: &Value,
) -> Option<std::cmp::Ordering> {
    if let (Some(x), Some(y)) = (as_numeric(g, a), as_numeric(g, b)) {
        return x.partial_cmp(&y);
    }
    if let (Some((sa, _)), Some((sb, _))) = (as_string(g, a), as_string(g, b)) {
        return Some(sa.cmp(&sb));
    }
    if let (Some(x), Some(y)) = (as_bool(g, a), as_bool(g, b)) {
        return Some(x.cmp(&y));
    }
    None
}

/// Total order key for ORDER BY: unbound < blank < IRI < literal, with
/// numeric literals ordered by value, then others by lexical form.
#[derive(Debug, Clone, PartialEq)]
pub enum OrderKey {
    Unbound,
    Blank(String),
    Iri(String),
    Number(f64),
    Text(String),
}

impl OrderKey {
    fn rank(&self) -> u8 {
        match self {
            OrderKey::Unbound => 0,
            OrderKey::Blank(_) => 1,
            OrderKey::Iri(_) => 2,
            OrderKey::Number(_) => 3,
            OrderKey::Text(_) => 4,
        }
    }
}

impl Eq for OrderKey {}

impl PartialOrd for OrderKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        match (self, other) {
            (OrderKey::Blank(a), OrderKey::Blank(b)) => a.cmp(b),
            (OrderKey::Iri(a), OrderKey::Iri(b)) => a.cmp(b),
            (OrderKey::Number(a), OrderKey::Number(b)) => {
                a.partial_cmp(b).unwrap_or(Ordering::Equal)
            }
            (OrderKey::Text(a), OrderKey::Text(b)) => a.cmp(b),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

/// Computes the ORDER BY key for an optional value.
pub fn order_key<G: GraphView + ?Sized>(g: &G, v: Option<&Value>) -> OrderKey {
    let Some(v) = v else {
        return OrderKey::Unbound;
    };
    if let Some(n) = as_numeric(g, v) {
        return OrderKey::Number(n);
    }
    match v {
        Value::Term(id) => match g.term(*id) {
            Term::BlankNode(b) => OrderKey::Blank(b.as_str().to_string()),
            Term::Iri(i) => OrderKey::Iri(i.as_str().to_string()),
            Term::Literal(l) => OrderKey::Text(l.lexical_form().to_string()),
        },
        Value::IriStr(s) => OrderKey::Iri(s.clone()),
        Value::Str { s, .. } => OrderKey::Text(s.clone()),
        Value::Bool(b) => OrderKey::Text(b.to_string()),
        Value::Int(_) | Value::Num(_) => unreachable!("handled by as_numeric"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use feo_rdf::Graph;

    fn setup() -> (Graph, TermId, TermId, TermId, TermId) {
        let mut g = Graph::new();
        let iri = g.intern(&Term::iri("http://e/x"));
        let int5 = g.intern(&Term::integer(5));
        let s = g.intern(&Term::simple("abc"));
        let b = g.intern(&Term::boolean(true));
        (g, iri, int5, s, b)
    }

    #[test]
    fn numeric_views() {
        let (g, _, int5, s, _) = setup();
        assert_eq!(as_numeric(&g, &Value::Term(int5)), Some(5.0));
        assert_eq!(as_numeric(&g, &Value::Num(2.5)), Some(2.5));
        assert_eq!(as_numeric(&g, &Value::Term(s)), None);
    }

    #[test]
    fn ebv_cases() {
        let (g, iri, int5, s, b) = setup();
        assert_eq!(ebv(&g, &Value::Term(b)), Some(true));
        assert_eq!(ebv(&g, &Value::Term(int5)), Some(true));
        assert_eq!(ebv(&g, &Value::Int(0)), Some(false));
        assert_eq!(
            ebv(
                &g,
                &Value::Str {
                    s: "".into(),
                    lang: None
                }
            ),
            Some(false)
        );
        assert_eq!(ebv(&g, &Value::Term(s)), Some(true));
        assert_eq!(ebv(&g, &Value::Term(iri)), None, "IRI has no EBV");
    }

    #[test]
    fn equality_mixes_term_and_computed() {
        let (g, _, int5, s, _) = setup();
        assert_eq!(
            values_equal(&g, &Value::Term(int5), &Value::Int(5)),
            Some(true)
        );
        assert_eq!(
            values_equal(&g, &Value::Term(int5), &Value::Num(5.0)),
            Some(true)
        );
        assert_eq!(
            values_equal(
                &g,
                &Value::Term(s),
                &Value::Str {
                    s: "abc".into(),
                    lang: None
                }
            ),
            Some(true)
        );
        assert_eq!(
            values_equal(&g, &Value::Term(int5), &Value::Int(6)),
            Some(false)
        );
    }

    #[test]
    fn iri_equality() {
        let (g, iri, ..) = setup();
        assert_eq!(
            values_equal(&g, &Value::Term(iri), &Value::IriStr("http://e/x".into())),
            Some(true)
        );
        assert_eq!(
            values_equal(&g, &Value::Term(iri), &Value::IriStr("http://e/y".into())),
            Some(false)
        );
    }

    #[test]
    fn comparison() {
        let (g, ..) = setup();
        use std::cmp::Ordering::*;
        assert_eq!(
            values_compare(&g, &Value::Int(1), &Value::Num(2.0)),
            Some(Less)
        );
        assert_eq!(
            values_compare(
                &g,
                &Value::Str {
                    s: "a".into(),
                    lang: None
                },
                &Value::Str {
                    s: "b".into(),
                    lang: None
                }
            ),
            Some(Less)
        );
        assert_eq!(
            values_compare(&g, &Value::Bool(false), &Value::Bool(true)),
            Some(Less)
        );
        assert_eq!(values_compare(&g, &Value::Int(1), &Value::Bool(true)), None);
    }

    #[test]
    fn order_keys_total_order() {
        let (g, iri, int5, s, _) = setup();
        let mut keys = [
            order_key(&g, Some(&Value::Term(s))),
            order_key(&g, None),
            order_key(&g, Some(&Value::Term(int5))),
            order_key(&g, Some(&Value::Term(iri))),
        ];
        keys.sort();
        assert_eq!(keys[0], OrderKey::Unbound);
        assert!(matches!(keys[1], OrderKey::Iri(_)));
        assert!(matches!(keys[2], OrderKey::Number(_)));
        assert!(matches!(keys[3], OrderKey::Text(_)));
    }

    #[test]
    fn into_term_id_round_trips() {
        let mut g = Graph::new();
        let id = Value::Int(42).into_term_id(&mut g);
        assert_eq!(g.term(id), &Term::integer(42));
        let id = Value::Str {
            s: "hi".into(),
            lang: Some("en".into()),
        }
        .into_term_id(&mut g);
        assert_eq!(g.term(id), &Term::Literal(Literal::lang("hi", "en")));
        let id = Value::IriStr("http://e/z".into()).into_term_id(&mut g);
        assert_eq!(g.term(id), &Term::iri("http://e/z"));
    }
}
