//! SPARQL query evaluation over any [`feo_rdf::GraphView`].
//!
//! The evaluator executes the AST directly with solution sets (vectors of
//! bindings) flowing through group-pattern elements, matching the SPARQL
//! algebra: triples blocks join, OPTIONAL left-joins, UNION concatenates,
//! MINUS anti-joins on shared domains, FILTERs apply at group scope, BIND
//! extends, VALUES joins an inline table. BGPs are greedily reordered by
//! bound-position count before matching.
//!
//! Evaluation is read-only: the input is any [`feo_rdf::GraphView`]
//! (a `&Graph`, an [`feo_rdf::Overlay`] session, or the `&mut Graph`
//! older call sites still hold). Computed terms (query constants, BIND /
//! SELECT expressions, VALUES data) are interned into a private scratch
//! overlay that is dropped when evaluation finishes, so the caller's
//! dictionary is never polluted by the queries it answers.

use std::cell::Cell;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};

use feo_rdf::governor::{Exhausted, Guard};
use feo_rdf::pool::map_chunks;
use feo_rdf::vocab::xsd;
use feo_rdf::{Graph, GraphStore, GraphView, Overlay, RunCursor, RunSpec, Term, TermId, Triple};

use crate::ast::*;
use crate::error::{Result, SparqlError};
use crate::parser::parse_query;
use crate::plan::{
    plan_query, BgpPlan, ElementPlan, GroupPlan, JoinAlgo, Plan, Planner, QueryOptions,
    HASH_JOIN_MIN_INPUT, PARALLEL_MIN_INPUT,
};
use crate::results::{QueryResult, SolutionTable};
use crate::value::{
    as_integer, as_numeric, as_string, ebv, order_key, str_builtin, values_compare, values_equal,
    Value,
};

/// One solution: a slot per registered variable.
type Binding = Vec<Option<TermId>>;

// Process-wide join-operator invocation counters, one per physical
// algorithm. Bumped once per operator execution (not per row) with
// relaxed ordering — they feed the service's `/stats` endpoint and the
// benchmarks' sanity checks, never synchronization.
static NESTED_JOINS: AtomicU64 = AtomicU64::new(0);
static HASH_JOINS: AtomicU64 = AtomicU64::new(0);
static MERGE_JOINS: AtomicU64 = AtomicU64::new(0);
static LEAPFROG_JOINS: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the cumulative per-algorithm join-operator counts for
/// this process (sequential and parallel variants count together; a
/// fused leapfrog group counts once however many patterns it covers).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JoinCounters {
    pub nested: u64,
    pub hash: u64,
    pub merge: u64,
    pub leapfrog: u64,
}

/// Reads the process-wide join counters (see [`JoinCounters`]).
pub fn join_counters() -> JoinCounters {
    JoinCounters {
        nested: NESTED_JOINS.load(Ordering::Relaxed),
        hash: HASH_JOINS.load(Ordering::Relaxed),
        merge: MERGE_JOINS.load(Ordering::Relaxed),
        leapfrog: LEAPFROG_JOINS.load(Ordering::Relaxed),
    }
}

/// Evaluator tuning knobs for the deprecated `*_with` entry points.
#[deprecated(note = "use `QueryOptions { planner, .. }` with `query` / `execute`")]
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Greedily reorder BGP triple patterns by bound-position count
    /// before matching. Disabling evaluates patterns in author order —
    /// the ablation baseline.
    pub reorder_bgp: bool,
}

#[allow(deprecated)]
impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions { reorder_bgp: true }
    }
}

#[allow(deprecated)]
impl ExecOptions {
    /// The planner the legacy knob selected: greedy reordering or
    /// author order. The cost-based planner did not exist behind this
    /// options type.
    fn planner(&self) -> Planner {
        if self.reorder_bgp {
            Planner::Greedy
        } else {
            Planner::Off
        }
    }
}

/// Parses and executes `text` against any [`GraphView`].
///
/// The one SPARQL entry point: [`QueryOptions`] carries the execution
/// [`Guard`] (input-size cap on the query text, solution budget on
/// join-row production, deadline / cancellation polling in hot loops —
/// a tripped budget surfaces as [`SparqlError::Exhausted`]), the
/// [`Planner`] choice, and EXPLAIN mode (return the rendered plan as
/// [`QueryResult::Plan`] instead of executing).
///
/// The view is read-only; computed terms (query constants, BIND results,
/// VALUES data) are interned into a private scratch [`Overlay`] that is
/// discarded with the evaluation, so the caller's dictionary and triple
/// set are untouched. Pass `&graph` for shared reads; `&mut graph` still
/// compiles for older call sites.
pub fn query<G: GraphView + Sync>(
    graph: G,
    text: &str,
    opts: &QueryOptions,
) -> Result<QueryResult> {
    if let Some(guard) = opts.guard {
        guard.check_input(text.len())?;
    }
    let q = parse_query(text)?;
    execute(graph, &q, opts)
}

/// Executes a parsed query (see [`query`] for the options contract).
///
/// With [`Planner::CostBased`] the query is compiled to a [`Plan`] from
/// the view's statistics before any row flows; callers that reuse one
/// plan across many executions (the engine's plan cache) should compile
/// once with [`plan_query`] and call [`execute_prepared`].
pub fn execute<G: GraphView + Sync>(
    graph: G,
    q: &Query,
    opts: &QueryOptions,
) -> Result<QueryResult> {
    if opts.explain || opts.planner == Planner::CostBased {
        let plan = plan_query(&graph, q);
        if opts.explain {
            return Ok(QueryResult::Plan(plan.render(q, opts.planner)));
        }
        return execute_inner(graph, q, opts, Some(&plan));
    }
    execute_inner(graph, q, opts, None)
}

/// Executes a parsed query with a previously compiled [`Plan`].
///
/// The plan must come from [`plan_query`] on the same query; a plan
/// whose shape does not match degrades to greedy ordering for the
/// mismatched nodes rather than misevaluating.
pub fn execute_prepared<G: GraphView + Sync>(
    graph: G,
    q: &Query,
    plan: &Plan,
    opts: &QueryOptions,
) -> Result<QueryResult> {
    if opts.explain {
        return Ok(QueryResult::Plan(plan.render(q, opts.planner)));
    }
    execute_inner(graph, q, opts, Some(plan))
}

/// Parses and executes with the legacy options struct.
#[deprecated(note = "use `query(graph, text, &QueryOptions { planner, .. })`")]
#[allow(deprecated)]
pub fn query_with<G: GraphView + Sync>(
    graph: G,
    text: &str,
    opts: &ExecOptions,
) -> Result<QueryResult> {
    let q = parse_query(text)?;
    execute_inner(
        graph,
        &q,
        &QueryOptions {
            planner: opts.planner(),
            ..QueryOptions::default()
        },
        None,
    )
}

/// Executes a parsed query with the legacy options struct.
#[deprecated(note = "use `execute(graph, q, &QueryOptions { planner, .. })`")]
#[allow(deprecated)]
pub fn execute_with<G: GraphView + Sync>(
    graph: G,
    q: &Query,
    opts: &ExecOptions,
) -> Result<QueryResult> {
    execute_inner(
        graph,
        q,
        &QueryOptions {
            planner: opts.planner(),
            ..QueryOptions::default()
        },
        None,
    )
}

/// Parses and executes under an execution [`Guard`].
#[deprecated(note = "use `query(graph, text, &QueryOptions::guarded(guard))`")]
pub fn query_guarded<G: GraphView + Sync>(
    graph: G,
    text: &str,
    guard: &Guard,
) -> Result<QueryResult> {
    query(graph, text, &QueryOptions::guarded(guard))
}

/// Executes a parsed query under an execution [`Guard`].
#[deprecated(note = "use `execute(graph, q, &QueryOptions::guarded(guard))`")]
pub fn execute_guarded<G: GraphView + Sync>(
    graph: G,
    q: &Query,
    guard: &Guard,
) -> Result<QueryResult> {
    execute(graph, q, &QueryOptions::guarded(guard))
}

fn execute_inner<G: GraphView + Sync>(
    graph: G,
    q: &Query,
    opts: &QueryOptions,
    plan: Option<&Plan>,
) -> Result<QueryResult> {
    let mut vars = VarTable::default();
    register_group_vars(&q.where_pattern, &mut vars);
    register_modifier_vars(q, &mut vars);
    let mut ctx = Ctx {
        g: Overlay::new(graph),
        vars,
        planner: opts.planner,
        force: opts.force_join,
        guard: opts.guard,
        tripped: Cell::new(None),
        workers: opts.parallelism.workers(),
    };

    let rows = ctx.eval_group(
        &q.where_pattern,
        vec![vec![None; ctx.vars.len()]],
        plan.map(|p| &p.root),
    )?;

    let result = match &q.form {
        QueryForm::Ask => Ok(QueryResult::Boolean(!rows.is_empty())),
        QueryForm::Construct { template } => ctx.construct(template, rows),
        QueryForm::Select {
            distinct,
            reduced,
            projection,
        } => ctx.select(q, projection, *distinct || *reduced, rows),
    };
    // A trip recorded inside an infallible path (e.g. property-path
    // closure) surfaces here even if the rest of evaluation completed.
    if let Some(exhausted) = ctx.tripped.get() {
        return Err(SparqlError::Exhausted(exhausted));
    }
    result
}

/// Variable registry: maps names (and blank-node labels, prefixed with
/// `_:`) to binding slots. Registration order is deterministic, so the
/// planner (which builds its own table from the same query) sees the
/// same slot numbering as the evaluator.
#[derive(Debug, Default, Clone)]
pub(crate) struct VarTable {
    names: Vec<String>,
    index: HashMap<String, usize>,
}

impl VarTable {
    fn len(&self) -> usize {
        self.names.len()
    }

    fn slot(&mut self, name: &str) -> usize {
        if let Some(&i) = self.index.get(name) {
            return i;
        }
        let i = self.names.len();
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), i);
        i
    }

    pub(crate) fn get(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }
}

pub(crate) fn register_group_vars(group: &GroupPattern, vars: &mut VarTable) {
    for el in &group.elements {
        match el {
            GroupElement::Triples(ts) => {
                for t in ts {
                    register_term_vars(&t.subject, vars);
                    if let Path::Var(v) = &t.path {
                        vars.slot(v);
                    }
                    register_term_vars(&t.object, vars);
                }
            }
            GroupElement::Optional(g) | GroupElement::Minus(g) | GroupElement::Group(g) => {
                register_group_vars(g, vars)
            }
            GroupElement::Union(arms) => {
                for a in arms {
                    register_group_vars(a, vars);
                }
            }
            GroupElement::Filter(e) => register_expr_vars(e, vars),
            GroupElement::Bind(e, v) => {
                register_expr_vars(e, vars);
                vars.slot(v);
            }
            GroupElement::Values(vb) => {
                for v in &vb.vars {
                    vars.slot(v);
                }
            }
        }
    }
}

fn register_term_vars(tp: &TermPattern, vars: &mut VarTable) {
    match tp {
        TermPattern::Var(v) => {
            vars.slot(v);
        }
        TermPattern::Blank(l) => {
            vars.slot(&format!("_:{l}"));
        }
        _ => {}
    }
}

fn register_expr_vars(e: &Expr, vars: &mut VarTable) {
    match e {
        Expr::Var(v) => {
            vars.slot(v);
        }
        Expr::Or(a, b) | Expr::And(a, b) | Expr::Compare(_, a, b) | Expr::Arith(_, a, b) => {
            register_expr_vars(a, vars);
            register_expr_vars(b, vars);
        }
        Expr::Not(a) | Expr::UnaryMinus(a) => register_expr_vars(a, vars),
        Expr::In(a, list, _) => {
            register_expr_vars(a, vars);
            for e in list {
                register_expr_vars(e, vars);
            }
        }
        Expr::Call(_, args) => {
            for a in args {
                register_expr_vars(a, vars);
            }
        }
        Expr::Exists(g, _) => register_group_vars(g, vars),
        Expr::Aggregate(agg) => {
            if let Some(inner) = &agg.expr {
                register_expr_vars(inner, vars);
            }
        }
        Expr::Iri(_) | Expr::Literal(_) => {}
    }
}

pub(crate) fn register_modifier_vars(q: &Query, vars: &mut VarTable) {
    if let QueryForm::Select {
        projection: Projection::Items(items),
        ..
    } = &q.form
    {
        for item in items {
            match item {
                ProjectionItem::Var(v) => {
                    vars.slot(v);
                }
                ProjectionItem::Expr(e, v) => {
                    register_expr_vars(e, vars);
                    vars.slot(v);
                }
            }
        }
    }
    for gc in &q.modifiers.group_by {
        match gc {
            GroupCondition::Var(v) => {
                vars.slot(v);
            }
            GroupCondition::Expr(e, alias) => {
                register_expr_vars(e, vars);
                if let Some(a) = alias {
                    vars.slot(a);
                }
            }
        }
    }
    for h in &q.modifiers.having {
        register_expr_vars(h, vars);
    }
    for oc in &q.modifiers.order_by {
        register_expr_vars(&oc.expr, vars);
    }
}

struct Ctx<'a, G: GraphView> {
    /// Scratch overlay over the caller's view: reads fall through to the
    /// base, while evaluator-created terms (ground query constants not in
    /// the base dictionary, BIND/SELECT expression results, fresh blank
    /// nodes) spill into the overlay's private dictionary. A ground term
    /// absent from the base gets a spill id that matches no triple, which
    /// preserves the "unknown constant finds nothing" semantics.
    g: Overlay<G>,
    vars: VarTable,
    /// Fallback BGP strategy when no plan step applies (plan shape
    /// mismatch, EXISTS subgroups, the non-cost-based planners).
    planner: Planner,
    /// Join-algorithm override from [`QueryOptions::force_join`]: swaps
    /// the physical operator per planned step without touching join
    /// order (results are byte-identical under every algorithm).
    force: Option<JoinAlgo>,
    /// Execution governor; `None` runs unguarded.
    guard: Option<&'a Guard>,
    /// Trip recorded from `&self` evaluation paths (property-path
    /// closures) that cannot return a `Result`; checked at element
    /// boundaries and again when evaluation finishes.
    tripped: Cell<Option<Exhausted>>,
    /// Resolved worker count for planner-marked parallel steps; 1 keeps
    /// every join on the calling thread.
    workers: usize,
}

impl<'a, G: GraphView + Sync> Ctx<'a, G> {
    /// Amortized governor poll for `&self` hot loops. Returns true when
    /// execution should stop; the trip is stashed in `self.tripped` and
    /// surfaced as an error at the next fallible boundary.
    #[inline]
    fn guard_tripped(&self) -> bool {
        if self.tripped.get().is_some() {
            return true;
        }
        if let Some(g) = self.guard {
            if let Err(exhausted) = g.check_time() {
                self.tripped.set(Some(exhausted));
                return true;
            }
        }
        false
    }

    /// Fallible governor checkpoint: converts a recorded or fresh trip
    /// into a typed error.
    fn checkpoint(&self) -> Result<()> {
        if let Some(exhausted) = self.tripped.get() {
            return Err(SparqlError::Exhausted(exhausted));
        }
        if let Some(g) = self.guard {
            if let Err(exhausted) = g.check_time() {
                self.tripped.set(Some(exhausted));
                return Err(SparqlError::Exhausted(exhausted));
            }
        }
        Ok(())
    }

    /// Charges `n` produced join rows against the solution budget.
    fn charge_solutions(&self, n: usize) -> Result<()> {
        if let Some(g) = self.guard {
            if let Err(exhausted) = g.add_solutions(n as u64) {
                self.tripped.set(Some(exhausted));
                return Err(SparqlError::Exhausted(exhausted));
            }
        }
        Ok(())
    }

    // ---- group patterns ------------------------------------------------

    /// Evaluates one group pattern. `plan` (when present) is walked in
    /// lockstep with `group.elements`: element `i` consults plan node
    /// `i`, recursing with the matching subplan. A shape mismatch at any
    /// node simply drops the plan for that node — evaluation stays
    /// correct, only the precomputed order is lost.
    fn eval_group(
        &mut self,
        group: &GroupPattern,
        input: Vec<Binding>,
        plan: Option<&GroupPlan>,
    ) -> Result<Vec<Binding>> {
        let mut rows = input;
        let mut filters: Vec<&Expr> = Vec::new();
        for (i, el) in group.elements.iter().enumerate() {
            self.checkpoint()?;
            let sub = plan.and_then(|p| p.elements.get(i));
            match el {
                GroupElement::Filter(e) => filters.push(e),
                GroupElement::Triples(ts) => {
                    let bp = match sub {
                        Some(ElementPlan::Bgp(bp)) => Some(bp),
                        _ => None,
                    };
                    rows = self.eval_bgp(ts, rows, bp)?;
                }
                GroupElement::Group(inner) => {
                    let gp = match sub {
                        Some(ElementPlan::Group(gp)) => Some(gp),
                        _ => None,
                    };
                    rows = self.eval_group(inner, rows, gp)?;
                }
                GroupElement::Optional(inner) => {
                    let gp = match sub {
                        Some(ElementPlan::Optional(gp)) => Some(gp),
                        _ => None,
                    };
                    let mut out = Vec::new();
                    for b in rows {
                        let extended = self.eval_group(inner, vec![b.clone()], gp)?;
                        if extended.is_empty() {
                            out.push(b);
                        } else {
                            out.extend(extended);
                        }
                    }
                    rows = out;
                }
                GroupElement::Union(arms) => {
                    let arm_plans = match sub {
                        Some(ElementPlan::Union(ps)) => Some(ps),
                        _ => None,
                    };
                    let mut out = Vec::new();
                    for (j, arm) in arms.iter().enumerate() {
                        let ap = arm_plans.and_then(|ps| ps.get(j));
                        out.extend(self.eval_group(arm, rows.clone(), ap)?);
                    }
                    rows = out;
                }
                GroupElement::Minus(inner) => {
                    let gp = match sub {
                        Some(ElementPlan::Minus(gp)) => Some(gp),
                        _ => None,
                    };
                    let empty = vec![vec![None; self.vars.len()]];
                    let rhs = self.eval_group(inner, empty, gp)?;
                    rows.retain(|b| {
                        !rhs.iter().any(|r| {
                            let mut shared = false;
                            for (x, y) in b.iter().zip(r.iter()) {
                                if let (Some(x), Some(y)) = (x, y) {
                                    if x != y {
                                        return false;
                                    }
                                    shared = true;
                                }
                            }
                            shared
                        })
                    });
                }
                GroupElement::Bind(e, v) => {
                    let slot = self
                        .vars
                        .get(v)
                        .ok_or_else(|| SparqlError::eval("unregistered BIND variable"))?;
                    let mut out = Vec::with_capacity(rows.len());
                    for mut b in rows {
                        if b[slot].is_some() {
                            return Err(SparqlError::eval(format!(
                                "BIND would rebind already-bound variable ?{v}"
                            )));
                        }
                        if let Some(val) = self.eval_expr(e, &b) {
                            b[slot] = Some(val.into_term_id(&mut self.g));
                        }
                        out.push(b);
                    }
                    rows = out;
                }
                GroupElement::Values(vb) => {
                    let slots: Vec<usize> = vb
                        .vars
                        .iter()
                        .map(|v| {
                            self.vars.get(v).ok_or_else(|| {
                                SparqlError::eval(format!("VALUES variable ?{v} is not registered"))
                            })
                        })
                        .collect::<Result<_>>()?;
                    // Intern the data terms.
                    let mut table: Vec<Vec<Option<TermId>>> = Vec::new();
                    for row in &vb.rows {
                        let mut r = Vec::with_capacity(row.len());
                        for cell in row {
                            r.push(match cell {
                                None => None,
                                Some(tp) => Some(self.intern_ground(tp)?),
                            });
                        }
                        table.push(r);
                    }
                    let mut out = Vec::new();
                    for b in &rows {
                        for trow in &table {
                            let mut merged = b.clone();
                            let mut ok = true;
                            for (slot, cell) in slots.iter().zip(trow.iter()) {
                                match (merged[*slot], cell) {
                                    (Some(x), Some(y)) if x != *y => {
                                        ok = false;
                                        break;
                                    }
                                    (None, Some(y)) => merged[*slot] = Some(*y),
                                    _ => {}
                                }
                            }
                            if ok {
                                out.push(merged);
                            }
                        }
                    }
                    rows = out;
                }
            }
        }
        for f in filters {
            let mut kept = Vec::with_capacity(rows.len());
            for b in rows {
                if self.filter_passes(f, &b)? {
                    kept.push(b);
                }
            }
            rows = kept;
        }
        Ok(rows)
    }

    fn filter_passes(&mut self, e: &Expr, b: &Binding) -> Result<bool> {
        // EXISTS needs mutable evaluation; handle at this level.
        Ok(match self.eval_expr(e, b) {
            Some(v) => ebv(&self.g, &v) == Some(true),
            None => false,
        })
    }

    // ---- BGP -------------------------------------------------------------

    fn eval_bgp(
        &mut self,
        patterns: &[TriplePattern],
        input: Vec<Binding>,
        plan: Option<&BgpPlan>,
    ) -> Result<Vec<Binding>> {
        // Planned path: execute the precomputed order with each step's
        // join-algorithm choice. Consecutive steps sharing a star-group
        // id run as one fused leapfrog intersection; `force_join` swaps
        // operators without touching order. A malformed plan (wrong
        // length, index out of range, duplicate steps) falls through to
        // the row-time strategies below.
        if let Some(bp) = plan {
            if bgp_plan_matches(bp, patterns.len()) {
                let mut rows = input;
                let mut i = 0;
                while i < bp.steps.len() {
                    let step = &bp.steps[i];
                    // Planner-marked parallel steps fan out only when a
                    // pool is configured and the input side is wide
                    // enough to amortize worker startup.
                    let par = self.workers > 1 && step.parallel && rows.len() >= PARALLEL_MIN_INPUT;
                    if let Some(gid) = step.star {
                        let mut j = i + 1;
                        while j < bp.steps.len() && bp.steps[j].star == Some(gid) {
                            j += 1;
                        }
                        // A forced non-leapfrog algorithm splits the
                        // group into its members; each then executes
                        // below under the forced operator.
                        if j - i >= 2 && matches!(self.force, None | Some(JoinAlgo::Leapfrog)) {
                            let members: Vec<&TriplePattern> = bp.steps[i..j]
                                .iter()
                                .map(|s| &patterns[s.pattern])
                                .collect();
                            rows = self.match_star_leapfrog(&members, rows, par)?;
                            if rows.is_empty() {
                                break;
                            }
                            i = j;
                            continue;
                        }
                    }
                    let tp = &patterns[step.pattern];
                    // Forcing an algorithm bypasses the input-width gate
                    // so differential tests exercise the operator on any
                    // row count; the planner's own choices keep it.
                    let (algo, forced) = match self.force {
                        None | Some(JoinAlgo::Leapfrog) => {
                            // A star member reaching here has no group
                            // to intersect with; nested is the per-step
                            // equivalent.
                            let a = match step.algo {
                                JoinAlgo::Leapfrog => JoinAlgo::Nested,
                                a => a,
                            };
                            (a, false)
                        }
                        Some(a) => (a, true),
                    };
                    let wide = forced || rows.len() >= HASH_JOIN_MIN_INPUT;
                    rows = match algo {
                        JoinAlgo::Hash if wide => {
                            if par {
                                self.match_triple_pattern_hash_par(tp, rows)?
                            } else {
                                self.match_triple_pattern_hash(tp, rows)?
                            }
                        }
                        JoinAlgo::Merge if wide => {
                            if par {
                                self.match_triple_pattern_merge_par(tp, rows)?
                            } else {
                                self.match_triple_pattern_merge(tp, rows)?
                            }
                        }
                        _ => {
                            if par {
                                self.match_triple_pattern_par(tp, rows)?
                            } else {
                                self.match_triple_pattern(tp, rows)?
                            }
                        }
                    };
                    if rows.is_empty() {
                        break;
                    }
                    i += 1;
                }
                return Ok(rows);
            }
        }
        if self.planner == Planner::Off {
            let mut rows = input;
            for tp in patterns {
                rows = self.match_triple_pattern(tp, rows)?;
                if rows.is_empty() {
                    break;
                }
            }
            return Ok(rows);
        }
        // Greedy static reorder: prefer patterns with most bound positions
        // given the variables bound so far (constants always count).
        let mut bound: HashSet<usize> = HashSet::new();
        if let Some(first) = input.first() {
            for (i, v) in first.iter().enumerate() {
                if v.is_some() {
                    bound.insert(i);
                }
            }
        }
        let mut remaining: Vec<&TriplePattern> = patterns.iter().collect();
        let mut ordered: Vec<&TriplePattern> = Vec::with_capacity(remaining.len());
        while !remaining.is_empty() {
            // Strictly-greater keeps the first maximum, so ties resolve
            // to author order and the solution sequence is deterministic.
            let mut best_idx = 0;
            let mut best_score = 0;
            for (i, tp) in remaining.iter().enumerate() {
                let score = self.pattern_selectivity(tp, &bound);
                if i == 0 || score > best_score {
                    best_idx = i;
                    best_score = score;
                }
            }
            let tp = remaining.remove(best_idx);
            for slot in self.pattern_var_slots(tp) {
                bound.insert(slot);
            }
            ordered.push(tp);
        }

        let mut rows = input;
        for tp in ordered {
            rows = self.match_triple_pattern(tp, rows)?;
            if rows.is_empty() {
                break;
            }
        }
        Ok(rows)
    }

    fn pattern_var_slots(&self, tp: &TriplePattern) -> Vec<usize> {
        let mut out = Vec::new();
        for t in [&tp.subject, &tp.object] {
            match t {
                TermPattern::Var(v) => out.extend(self.vars.get(v)),
                TermPattern::Blank(l) => out.extend(self.vars.get(&format!("_:{l}"))),
                _ => {}
            }
        }
        if let Path::Var(v) = &tp.path {
            out.extend(self.vars.get(v));
        }
        out
    }

    fn pattern_selectivity(&self, tp: &TriplePattern, bound: &HashSet<usize>) -> usize {
        let mut score = 0;
        let term_score = |t: &TermPattern| match t {
            TermPattern::Var(v) => {
                if self.vars.get(v).is_some_and(|s| bound.contains(&s)) {
                    2
                } else {
                    0
                }
            }
            TermPattern::Blank(l) => {
                if self
                    .vars
                    .get(&format!("_:{l}"))
                    .is_some_and(|s| bound.contains(&s))
                {
                    2
                } else {
                    0
                }
            }
            _ => 3, // ground terms are most selective
        };
        score += term_score(&tp.subject);
        score += term_score(&tp.object);
        score += match &tp.path {
            Path::Var(v) => {
                if self.vars.get(v).is_some_and(|s| bound.contains(&s)) {
                    2
                } else {
                    0
                }
            }
            Path::Iri(_) => 3,
            _ => 1, // complex paths: evaluate late unless endpoints help
        };
        score
    }

    fn match_triple_pattern(
        &mut self,
        tp: &TriplePattern,
        rows: Vec<Binding>,
    ) -> Result<Vec<Binding>> {
        NESTED_JOINS.fetch_add(1, Ordering::Relaxed);
        let mut uncharged: usize = 0;
        let mut out = Vec::new();
        for b in rows {
            let produced_before = out.len();
            let s_slot = self.term_slot(&tp.subject);
            let o_slot = self.term_slot(&tp.object);
            let s_val = self.term_value(&tp.subject, &b)?;
            let o_val = self.term_value(&tp.object, &b)?;

            match &tp.path {
                Path::Var(pv) => {
                    let p_slot = self.vars.get(pv);
                    let p_val = p_slot.and_then(|s| b[s]);
                    for [ms, mp, mo] in self.g.match_pattern(s_val, p_val, o_val) {
                        let mut nb = b.clone();
                        if let Some(slot) = s_slot {
                            nb[slot] = Some(ms);
                        }
                        if let Some(slot) = p_slot {
                            nb[slot] = Some(mp);
                        }
                        if let Some(slot) = o_slot {
                            nb[slot] = Some(mo);
                        }
                        out.push(nb);
                    }
                }
                Path::Iri(p) => {
                    let p_id = self.g.lookup_iri(p);
                    let Some(p_id) = p_id else { continue };
                    for [ms, _, mo] in self.g.match_pattern(s_val, Some(p_id), o_val) {
                        let mut nb = b.clone();
                        if let Some(slot) = s_slot {
                            nb[slot] = Some(ms);
                        }
                        if let Some(slot) = o_slot {
                            nb[slot] = Some(mo);
                        }
                        out.push(nb);
                    }
                }
                path => {
                    for (ms, mo) in self.eval_path(path, s_val, o_val) {
                        let mut nb = b.clone();
                        if let Some(slot) = s_slot {
                            nb[slot] = Some(ms);
                        }
                        if let Some(slot) = o_slot {
                            nb[slot] = Some(mo);
                        }
                        out.push(nb);
                    }
                }
            }
            uncharged += out.len() - produced_before;
            if uncharged >= CHARGE_BATCH {
                self.charge_solutions(uncharged)?;
                uncharged = 0;
            }
        }
        self.charge_solutions(uncharged)?;
        Ok(out)
    }

    /// Hash-join variant of [`Self::match_triple_pattern`] for plain-IRI
    /// predicates: one index scan over the pattern's predicate (narrowed
    /// by any ground endpoints) builds the join side, then each input
    /// row probes hash maps instead of running its own B-tree range
    /// scan. Probe structures are built lazily per boundness signature,
    /// because rows in one solution set can differ in which endpoint
    /// variables they bind (OPTIONAL, UNION).
    fn match_triple_pattern_hash(
        &mut self,
        tp: &TriplePattern,
        rows: Vec<Binding>,
    ) -> Result<Vec<Binding>> {
        let Path::Iri(p) = &tp.path else {
            // Planner only marks plain predicates; stay correct anyway.
            return self.match_triple_pattern(tp, rows);
        };
        HASH_JOINS.fetch_add(1, Ordering::Relaxed);
        let Some(p_id) = self.g.lookup_iri(p) else {
            // Unknown predicate: every row finds nothing.
            return Ok(Vec::new());
        };
        let s_slot = self.term_slot(&tp.subject);
        let o_slot = self.term_slot(&tp.object);
        let s_ground = match &tp.subject {
            TermPattern::Var(_) | TermPattern::Blank(_) => None,
            ground => Some(self.intern_ground(ground)?),
        };
        let o_ground = match &tp.object {
            TermPattern::Var(_) | TermPattern::Blank(_) => None,
            ground => Some(self.intern_ground(ground)?),
        };
        let scan: Vec<[TermId; 3]> = self.g.match_pattern(s_ground, Some(p_id), o_ground);
        let mut by_s: Option<HashMap<TermId, Vec<usize>>> = None;
        let mut by_o: Option<HashMap<TermId, Vec<usize>>> = None;
        let mut by_so: Option<HashSet<(TermId, TermId)>> = None;
        let mut out = Vec::new();
        let mut uncharged: usize = 0;
        for b in rows {
            let produced_before = out.len();
            let s_val = s_slot.and_then(|slot| b[slot]);
            let o_val = o_slot.and_then(|slot| b[slot]);
            match (s_val, o_val) {
                (Some(sv), Some(ov)) => {
                    let set =
                        by_so.get_or_insert_with(|| scan.iter().map(|t| (t[0], t[2])).collect());
                    if set.contains(&(sv, ov)) {
                        out.push(b);
                    }
                }
                (Some(sv), None) => {
                    let map = by_s.get_or_insert_with(|| index_scan(&scan, 0));
                    if let Some(hits) = map.get(&sv) {
                        for &i in hits {
                            let mut nb = b.clone();
                            if bind(&mut nb, o_slot, scan[i][2]) {
                                out.push(nb);
                            }
                        }
                    }
                }
                (None, Some(ov)) => {
                    let map = by_o.get_or_insert_with(|| index_scan(&scan, 2));
                    if let Some(hits) = map.get(&ov) {
                        for &i in hits {
                            let mut nb = b.clone();
                            if bind(&mut nb, s_slot, scan[i][0]) {
                                out.push(nb);
                            }
                        }
                    }
                }
                (None, None) => {
                    for t in &scan {
                        let mut nb = b.clone();
                        if bind(&mut nb, s_slot, t[0]) && bind(&mut nb, o_slot, t[2]) {
                            out.push(nb);
                        }
                    }
                }
            }
            uncharged += out.len() - produced_before;
            if uncharged >= CHARGE_BATCH {
                self.charge_solutions(uncharged)?;
                uncharged = 0;
            }
        }
        self.charge_solutions(uncharged)?;
        Ok(out)
    }

    /// Sorted-merge variant of [`Self::match_triple_pattern_hash`]: the
    /// planner marks joins whose one-predicate scan arrives already
    /// ordered on the join column (`pos` scans sort by object, per-
    /// subject `spo` scans by object, per-object scans by subject), so
    /// instead of hashing the scan this operator binary-searches a
    /// sorted key directory built in one linear pass. Layered views
    /// concatenate per-layer sorted ranges; a linear sortedness check
    /// catches that case and one stable sort by key restores the
    /// directory invariant while keeping per-key hits in scan order —
    /// the exact hit sequence the hash path's index map yields, so
    /// results stay byte-identical. Rows whose boundness does not match
    /// the key column (OPTIONAL / UNION mixtures) fall back to the same
    /// lazily built hash index the hash operator uses.
    fn match_triple_pattern_merge(
        &mut self,
        tp: &TriplePattern,
        rows: Vec<Binding>,
    ) -> Result<Vec<Binding>> {
        let Path::Iri(p) = &tp.path else {
            // Planner only marks plain predicates; stay correct anyway.
            return self.match_triple_pattern(tp, rows);
        };
        MERGE_JOINS.fetch_add(1, Ordering::Relaxed);
        let Some(p_id) = self.g.lookup_iri(p) else {
            // Unknown predicate: every row finds nothing.
            return Ok(Vec::new());
        };
        let s_slot = self.term_slot(&tp.subject);
        let o_slot = self.term_slot(&tp.object);
        let s_ground = match &tp.subject {
            TermPattern::Var(_) | TermPattern::Blank(_) => None,
            ground => Some(self.intern_ground(ground)?),
        };
        let o_ground = match &tp.object {
            TermPattern::Var(_) | TermPattern::Blank(_) => None,
            ground => Some(self.intern_ground(ground)?),
        };
        let scan: Vec<[TermId; 3]> = self.g.match_pattern(s_ground, Some(p_id), o_ground);
        let key_col = merge_key_col(s_ground, o_ground);
        let dir = KeyDirectory::build(&scan, key_col);
        let mut fallback: Option<HashMap<TermId, Vec<usize>>> = None;
        let mut out = Vec::new();
        let mut uncharged: usize = 0;
        for b in rows {
            let produced_before = out.len();
            let s_val = s_slot.and_then(|slot| b[slot]);
            let o_val = o_slot.and_then(|slot| b[slot]);
            match (s_val, o_val) {
                (Some(sv), Some(ov)) => {
                    let (kv, other_col, other_v) = if key_col == 0 {
                        (sv, 2, ov)
                    } else {
                        (ov, 0, sv)
                    };
                    if dir.hits(kv).iter().any(|&i| scan[i][other_col] == other_v) {
                        out.push(b);
                    }
                }
                (Some(sv), None) if key_col == 0 => {
                    for &i in dir.hits(sv) {
                        let mut nb = b.clone();
                        if bind(&mut nb, o_slot, scan[i][2]) {
                            out.push(nb);
                        }
                    }
                }
                (None, Some(ov)) if key_col == 2 => {
                    for &i in dir.hits(ov) {
                        let mut nb = b.clone();
                        if bind(&mut nb, s_slot, scan[i][0]) {
                            out.push(nb);
                        }
                    }
                }
                (Some(sv), None) => {
                    let map = fallback.get_or_insert_with(|| index_scan(&scan, 0));
                    if let Some(hits) = map.get(&sv) {
                        for &i in hits {
                            let mut nb = b.clone();
                            if bind(&mut nb, o_slot, scan[i][2]) {
                                out.push(nb);
                            }
                        }
                    }
                }
                (None, Some(ov)) => {
                    let map = fallback.get_or_insert_with(|| index_scan(&scan, 2));
                    if let Some(hits) = map.get(&ov) {
                        for &i in hits {
                            let mut nb = b.clone();
                            if bind(&mut nb, s_slot, scan[i][0]) {
                                out.push(nb);
                            }
                        }
                    }
                }
                (None, None) => {
                    for t in &scan {
                        let mut nb = b.clone();
                        if bind(&mut nb, s_slot, t[0]) && bind(&mut nb, o_slot, t[2]) {
                            out.push(nb);
                        }
                    }
                }
            }
            uncharged += out.len() - produced_before;
            if uncharged >= CHARGE_BATCH {
                self.charge_solutions(uncharged)?;
                uncharged = 0;
            }
        }
        self.charge_solutions(uncharged)?;
        Ok(out)
    }

    /// Parallel dual of [`Self::match_triple_pattern_merge`]: the key
    /// directory is built once up front (it is a shared read-only
    /// structure like the hash path's shards), rows probe it in
    /// contiguous chunks, and chunk outputs concatenate in pinned input
    /// order — the solution sequence matches the sequential merge for
    /// every worker count. Off-key fallback rows are detected in one
    /// boundness pass so the fallback hash shards exist before workers
    /// start.
    fn match_triple_pattern_merge_par(
        &mut self,
        tp: &TriplePattern,
        rows: Vec<Binding>,
    ) -> Result<Vec<Binding>> {
        let Path::Iri(p) = &tp.path else {
            // Planner only marks plain predicates; stay correct anyway.
            return self.match_triple_pattern(tp, rows);
        };
        MERGE_JOINS.fetch_add(1, Ordering::Relaxed);
        let Some(p_id) = self.g.lookup_iri(p) else {
            // Unknown predicate: every row finds nothing.
            return Ok(Vec::new());
        };
        let s_slot = self.term_slot(&tp.subject);
        let o_slot = self.term_slot(&tp.object);
        let s_ground = match &tp.subject {
            TermPattern::Var(_) | TermPattern::Blank(_) => None,
            ground => Some(self.intern_ground(ground)?),
        };
        let o_ground = match &tp.object {
            TermPattern::Var(_) | TermPattern::Blank(_) => None,
            ground => Some(self.intern_ground(ground)?),
        };
        let scan: Vec<[TermId; 3]> = self.g.match_pattern(s_ground, Some(p_id), o_ground);
        let key_col = merge_key_col(s_ground, o_ground);
        let dir = KeyDirectory::build(&scan, key_col);
        // One boundness pass decides whether any row joins on the
        // non-key column and needs the hash fallback shards.
        let mut need_fallback = false;
        for b in &rows {
            let sb = s_slot.and_then(|sl| b[sl]).is_some();
            let ob = o_slot.and_then(|sl| b[sl]).is_some();
            need_fallback |= if key_col == 0 { !sb && ob } else { sb && !ob };
        }
        let other_col = if key_col == 0 { 2 } else { 0 };
        let workers = self.workers;
        let fallback = need_fallback.then(|| build_shards(workers, &scan, other_col));
        let guard = self.guard;
        let results = map_chunks(workers, PARALLEL_MIN_INPUT, &rows, |_, chunk| {
            let mut out: Vec<Binding> = Vec::new();
            let mut uncharged = 0usize;
            let mut trip: Option<Exhausted> = None;
            for b in chunk {
                if let Some(gd) = guard {
                    if let Err(e) = gd.check_time() {
                        trip = Some(e);
                        break;
                    }
                }
                let before = out.len();
                let s_val = s_slot.and_then(|sl| b[sl]);
                let o_val = o_slot.and_then(|sl| b[sl]);
                match (s_val, o_val) {
                    (Some(sv), Some(ov)) => {
                        let (kv, oc, other_v) = if key_col == 0 {
                            (sv, 2, ov)
                        } else {
                            (ov, 0, sv)
                        };
                        if dir.hits(kv).iter().any(|&i| scan[i][oc] == other_v) {
                            out.push(b.clone());
                        }
                    }
                    (Some(sv), None) if key_col == 0 => {
                        for &i in dir.hits(sv) {
                            let mut nb = b.clone();
                            if bind(&mut nb, o_slot, scan[i][2]) {
                                out.push(nb);
                            }
                        }
                    }
                    (None, Some(ov)) if key_col == 2 => {
                        for &i in dir.hits(ov) {
                            let mut nb = b.clone();
                            if bind(&mut nb, s_slot, scan[i][0]) {
                                out.push(nb);
                            }
                        }
                    }
                    (Some(v), None) | (None, Some(v)) => {
                        // Off-key join: probe the fallback shards in
                        // chunk order (ascending global indices, same
                        // as the sequential lazy map).
                        let (bind_slot, bind_col) = if key_col == 0 {
                            (s_slot, 0)
                        } else {
                            (o_slot, 2)
                        };
                        for shard in fallback.iter().flatten() {
                            if let Some(hits) = shard.get(&v) {
                                for &i in hits {
                                    let mut nb = b.clone();
                                    if bind(&mut nb, bind_slot, scan[i][bind_col]) {
                                        out.push(nb);
                                    }
                                }
                            }
                        }
                    }
                    (None, None) => {
                        for t in &scan {
                            let mut nb = b.clone();
                            if bind(&mut nb, s_slot, t[0]) && bind(&mut nb, o_slot, t[2]) {
                                out.push(nb);
                            }
                        }
                    }
                }
                uncharged += out.len() - before;
                if uncharged >= CHARGE_BATCH {
                    if let Err(e) = charge(guard, &mut uncharged) {
                        trip = Some(e);
                        break;
                    }
                }
            }
            if trip.is_none() {
                trip = charge(guard, &mut uncharged).err();
            }
            (out, trip)
        });
        self.merge_partitions(results)
    }

    /// Row-partitioned dual of [`Self::match_triple_pattern`] for simple
    /// (plain-IRI or variable) predicates: ground terms are interned
    /// once up front, then input rows split into contiguous chunks and
    /// workers match read-only against the shared view. Chunk outputs
    /// concatenate in pinned input order, so the solution sequence is
    /// identical to the sequential loop's. Workers charge the shared
    /// guard directly (its counters are atomic); a trip stops the
    /// worker's chunk and surfaces as a typed error after the merge —
    /// overshoot is bounded by one charge batch per worker.
    fn match_triple_pattern_par(
        &mut self,
        tp: &TriplePattern,
        rows: Vec<Binding>,
    ) -> Result<Vec<Binding>> {
        let s_slot = self.term_slot(&tp.subject);
        let o_slot = self.term_slot(&tp.object);
        let s_ground = match &tp.subject {
            TermPattern::Var(_) | TermPattern::Blank(_) => None,
            ground => Some(self.intern_ground(ground)?),
        };
        let o_ground = match &tp.object {
            TermPattern::Var(_) | TermPattern::Blank(_) => None,
            ground => Some(self.intern_ground(ground)?),
        };
        let (p_fixed, p_slot) = match &tp.path {
            Path::Iri(p) => match self.g.lookup_iri(p) {
                Some(id) => (Some(id), None),
                // Unknown predicate: every row finds nothing.
                None => return Ok(Vec::new()),
            },
            Path::Var(v) => (None, self.vars.get(v)),
            // Complex paths keep the sequential closure evaluator.
            _ => return self.match_triple_pattern(tp, rows),
        };
        NESTED_JOINS.fetch_add(1, Ordering::Relaxed);
        let g = &self.g;
        let guard = self.guard;
        let results = map_chunks(self.workers, PARALLEL_MIN_INPUT, &rows, |_, chunk| {
            let mut out: Vec<Binding> = Vec::new();
            let mut uncharged = 0usize;
            let mut trip: Option<Exhausted> = None;
            for b in chunk {
                if let Some(gd) = guard {
                    if let Err(e) = gd.check_time() {
                        trip = Some(e);
                        break;
                    }
                }
                let s_val = s_ground.or_else(|| s_slot.and_then(|sl| b[sl]));
                let o_val = o_ground.or_else(|| o_slot.and_then(|sl| b[sl]));
                let p_val = p_fixed.or_else(|| p_slot.and_then(|sl| b[sl]));
                let before = out.len();
                for [ms, mp, mo] in g.match_pattern(s_val, p_val, o_val) {
                    let mut nb = b.clone();
                    if let Some(slot) = s_slot {
                        nb[slot] = Some(ms);
                    }
                    if let Some(slot) = p_slot {
                        nb[slot] = Some(mp);
                    }
                    if let Some(slot) = o_slot {
                        nb[slot] = Some(mo);
                    }
                    out.push(nb);
                }
                uncharged += out.len() - before;
                if uncharged >= CHARGE_BATCH {
                    if let Err(e) = charge(guard, &mut uncharged) {
                        trip = Some(e);
                        break;
                    }
                }
            }
            if trip.is_none() {
                trip = charge(guard, &mut uncharged).err();
            }
            (out, trip)
        });
        self.merge_partitions(results)
    }

    /// Parallel dual of [`Self::match_triple_pattern_hash`]: the build
    /// side hashes in sharded chunks across the pool (each worker hashes
    /// one contiguous slice of the scan, keyed by global scan index),
    /// then input rows probe the shards in parallel. Probing consults
    /// shards in chunk order and shard hit lists are ascending, so per
    /// key the concatenated hits reproduce exactly the single-map scan
    /// order — the output multiset and sequence match the sequential
    /// path for every worker count.
    fn match_triple_pattern_hash_par(
        &mut self,
        tp: &TriplePattern,
        rows: Vec<Binding>,
    ) -> Result<Vec<Binding>> {
        let Path::Iri(p) = &tp.path else {
            // Planner only marks plain predicates; stay correct anyway.
            return self.match_triple_pattern(tp, rows);
        };
        HASH_JOINS.fetch_add(1, Ordering::Relaxed);
        let Some(p_id) = self.g.lookup_iri(p) else {
            // Unknown predicate: every row finds nothing.
            return Ok(Vec::new());
        };
        let s_slot = self.term_slot(&tp.subject);
        let o_slot = self.term_slot(&tp.object);
        let s_ground = match &tp.subject {
            TermPattern::Var(_) | TermPattern::Blank(_) => None,
            ground => Some(self.intern_ground(ground)?),
        };
        let o_ground = match &tp.object {
            TermPattern::Var(_) | TermPattern::Blank(_) => None,
            ground => Some(self.intern_ground(ground)?),
        };
        let scan: Vec<[TermId; 3]> = self.g.match_pattern(s_ground, Some(p_id), o_ground);
        // One cheap pass decides which probe structures the row set
        // needs (rows can differ in boundness under OPTIONAL / UNION).
        let (mut need_s, mut need_o, mut need_so) = (false, false, false);
        for b in &rows {
            let sb = s_slot.and_then(|sl| b[sl]).is_some();
            let ob = o_slot.and_then(|sl| b[sl]).is_some();
            match (sb, ob) {
                (true, true) => need_so = true,
                (true, false) => need_s = true,
                (false, true) => need_o = true,
                (false, false) => {}
            }
        }
        let workers = self.workers;
        let by_s = need_s.then(|| build_shards(workers, &scan, 0));
        let by_o = need_o.then(|| build_shards(workers, &scan, 2));
        let by_so: Option<HashSet<(TermId, TermId)>> =
            need_so.then(|| scan.iter().map(|t| (t[0], t[2])).collect());
        let guard = self.guard;
        let results = map_chunks(workers, PARALLEL_MIN_INPUT, &rows, |_, chunk| {
            let mut out: Vec<Binding> = Vec::new();
            let mut uncharged = 0usize;
            let mut trip: Option<Exhausted> = None;
            for b in chunk {
                if let Some(gd) = guard {
                    if let Err(e) = gd.check_time() {
                        trip = Some(e);
                        break;
                    }
                }
                let before = out.len();
                let s_val = s_slot.and_then(|sl| b[sl]);
                let o_val = o_slot.and_then(|sl| b[sl]);
                match (s_val, o_val) {
                    (Some(sv), Some(ov)) => {
                        if by_so.as_ref().is_some_and(|set| set.contains(&(sv, ov))) {
                            out.push(b.clone());
                        }
                    }
                    (Some(sv), None) => {
                        for shard in by_s.iter().flatten() {
                            if let Some(hits) = shard.get(&sv) {
                                for &i in hits {
                                    let mut nb = b.clone();
                                    if bind(&mut nb, o_slot, scan[i][2]) {
                                        out.push(nb);
                                    }
                                }
                            }
                        }
                    }
                    (None, Some(ov)) => {
                        for shard in by_o.iter().flatten() {
                            if let Some(hits) = shard.get(&ov) {
                                for &i in hits {
                                    let mut nb = b.clone();
                                    if bind(&mut nb, s_slot, scan[i][0]) {
                                        out.push(nb);
                                    }
                                }
                            }
                        }
                    }
                    (None, None) => {
                        for t in &scan {
                            let mut nb = b.clone();
                            if bind(&mut nb, s_slot, t[0]) && bind(&mut nb, o_slot, t[2]) {
                                out.push(nb);
                            }
                        }
                    }
                }
                uncharged += out.len() - before;
                if uncharged >= CHARGE_BATCH {
                    if let Err(e) = charge(guard, &mut uncharged) {
                        trip = Some(e);
                        break;
                    }
                }
            }
            if trip.is_none() {
                trip = charge(guard, &mut uncharged).err();
            }
            (out, trip)
        });
        self.merge_partitions(results)
    }

    /// Fused multiway star join: `members` are k triple patterns sharing
    /// one variable, each with a plain-IRI predicate and a ground other
    /// endpoint, so each contributes an ordered run (see
    /// [`feo_rdf::RunSpec`]) over the shared variable's candidates. A
    /// leapfrog intersection seeks the k cursors through each other's
    /// gaps — O(k · min-run · log) instead of scanning and hashing every
    /// run — and the accepted values then extend the input rows.
    ///
    /// Output order is byte-identical to executing the members as
    /// sequential binary joins: each accepted value is tagged with the
    /// layer ([`RunCursor::source`]) it came from in the *first*
    /// member's cursor, and emission sorts by `(source, id)` — exactly
    /// the concatenated scan order `match_pattern` yields for that
    /// member, while the remaining members act as pure filters.
    fn match_star_leapfrog(
        &mut self,
        members: &[&TriplePattern],
        rows: Vec<Binding>,
        par: bool,
    ) -> Result<Vec<Binding>> {
        // Resolve the shared slot and one run spec per member; any shape
        // the planner would not have fused (stale plan) falls back to
        // nested execution, which is always correct.
        let mut v_slot: Option<usize> = None;
        let mut specs: Vec<RunSpec> = Vec::with_capacity(members.len());
        for tp in members {
            let Path::Iri(p) = &tp.path else {
                return self.star_fallback(members, rows);
            };
            let p_id = self.g.lookup_iri(p);
            let s_slot = self.term_slot(&tp.subject);
            let o_slot = self.term_slot(&tp.object);
            let (slot, spec) = match (s_slot, o_slot) {
                (Some(slot), None) => {
                    let o = self.intern_ground(&tp.object)?;
                    (slot, p_id.map(|p| RunSpec::Subjects { p, o }))
                }
                (None, Some(slot)) => {
                    let s = self.intern_ground(&tp.subject)?;
                    (slot, p_id.map(|p| RunSpec::Objects { s, p }))
                }
                _ => return self.star_fallback(members, rows),
            };
            if *v_slot.get_or_insert(slot) != slot {
                return self.star_fallback(members, rows);
            }
            match spec {
                Some(sp) => specs.push(sp),
                // Unknown predicate: that member matches nothing, so the
                // whole intersection is empty (the hash operator returns
                // the same empty solution set).
                None => return Ok(Vec::new()),
            }
        }
        let Some(v_slot) = v_slot else {
            return self.star_fallback(members, rows);
        };
        LEAPFROG_JOINS.fetch_add(1, Ordering::Relaxed);

        // Intersect the k ordered runs: repeatedly seek every cursor to
        // the current maximum until all agree, accept, advance the
        // anchor (the first member — the planner sorts the smallest
        // estimated run first).
        let mut inter: Vec<(usize, TermId)> = Vec::new();
        {
            let mut cursors: Vec<Box<dyn RunCursor + '_>> =
                specs.iter().map(|&sp| self.g.ordered_run(sp)).collect();
            let mut ticks = 0u32;
            'outer: while let Some(first) = cursors[0].peek() {
                let mut hi = first;
                loop {
                    let mut agreed = true;
                    for c in cursors.iter_mut() {
                        c.seek(hi);
                        match c.peek() {
                            None => break 'outer,
                            Some(v) if v > hi => {
                                hi = v;
                                agreed = false;
                            }
                            Some(_) => {}
                        }
                    }
                    ticks += cursors.len() as u32;
                    if ticks >= 1024 {
                        ticks = 0;
                        self.checkpoint()?;
                    }
                    if agreed {
                        break;
                    }
                }
                inter.push((cursors[0].source(), hi));
                cursors[0].advance();
            }
        }

        // Ascending ids for bound-row membership tests; emission order
        // for unbound rows re-sorts by (source, id) — stable, and values
        // within one source are already ascending.
        let sorted_v: Vec<TermId> = inter.iter().map(|&(_, v)| v).collect();
        let mut emit = inter;
        emit.sort_by_key(|&(src, _)| src);

        if par {
            let guard = self.guard;
            let results = map_chunks(self.workers, PARALLEL_MIN_INPUT, &rows, |_, chunk| {
                let mut out: Vec<Binding> = Vec::new();
                let mut uncharged = 0usize;
                let mut trip: Option<Exhausted> = None;
                for b in chunk {
                    if let Some(gd) = guard {
                        if let Err(e) = gd.check_time() {
                            trip = Some(e);
                            break;
                        }
                    }
                    let before = out.len();
                    match b[v_slot] {
                        Some(v) => {
                            if sorted_v.binary_search(&v).is_ok() {
                                out.push(b.clone());
                            }
                        }
                        None => {
                            for &(_, v) in &emit {
                                let mut nb = b.clone();
                                nb[v_slot] = Some(v);
                                out.push(nb);
                            }
                        }
                    }
                    uncharged += out.len() - before;
                    if uncharged >= CHARGE_BATCH {
                        if let Err(e) = charge(guard, &mut uncharged) {
                            trip = Some(e);
                            break;
                        }
                    }
                }
                if trip.is_none() {
                    trip = charge(guard, &mut uncharged).err();
                }
                (out, trip)
            });
            return self.merge_partitions(results);
        }

        let mut out = Vec::new();
        let mut uncharged = 0usize;
        for b in rows {
            let before = out.len();
            match b[v_slot] {
                // Already-bound shared variable (OPTIONAL / UNION rows):
                // membership test against the intersection.
                Some(v) => {
                    if sorted_v.binary_search(&v).is_ok() {
                        out.push(b);
                    }
                }
                None => {
                    for &(_, v) in &emit {
                        let mut nb = b.clone();
                        nb[v_slot] = Some(v);
                        out.push(nb);
                    }
                }
            }
            uncharged += out.len() - before;
            if uncharged >= CHARGE_BATCH {
                self.charge_solutions(uncharged)?;
                uncharged = 0;
            }
        }
        self.charge_solutions(uncharged)?;
        Ok(out)
    }

    /// Stale-plan escape for [`Self::match_star_leapfrog`]: executes the
    /// group members as sequential nested-loop joins, which is correct
    /// for any pattern shape.
    fn star_fallback(
        &mut self,
        members: &[&TriplePattern],
        rows: Vec<Binding>,
    ) -> Result<Vec<Binding>> {
        let mut rows = rows;
        for tp in members {
            rows = self.match_triple_pattern(tp, rows)?;
            if rows.is_empty() {
                break;
            }
        }
        Ok(rows)
    }

    /// Concatenates per-chunk outputs in pinned order; the first worker
    /// trip (if any) is recorded and surfaced as a typed error.
    fn merge_partitions(
        &self,
        results: Vec<(Vec<Binding>, Option<Exhausted>)>,
    ) -> Result<Vec<Binding>> {
        let mut out = Vec::new();
        let mut trip: Option<Exhausted> = None;
        for (chunk_out, chunk_trip) in results {
            out.extend(chunk_out);
            if trip.is_none() {
                trip = chunk_trip;
            }
        }
        if let Some(e) = trip {
            self.tripped.set(Some(e));
            return Err(SparqlError::Exhausted(e));
        }
        Ok(out)
    }

    fn term_slot(&self, tp: &TermPattern) -> Option<usize> {
        match tp {
            TermPattern::Var(v) => self.vars.get(v),
            TermPattern::Blank(l) => self.vars.get(&format!("_:{l}")),
            _ => None,
        }
    }

    /// The bound id for this position, if any. Ground terms that are not
    /// in the dictionary yield a sentinel no-match by interning (the
    /// pattern simply finds nothing).
    fn term_value(&mut self, tp: &TermPattern, b: &Binding) -> Result<Option<TermId>> {
        Ok(match tp {
            TermPattern::Var(v) => self.vars.get(v).and_then(|s| b[s]),
            TermPattern::Blank(l) => self.vars.get(&format!("_:{l}")).and_then(|s| b[s]),
            ground => Some(self.intern_ground(ground)?),
        })
    }

    fn intern_ground(&mut self, tp: &TermPattern) -> Result<TermId> {
        let term = ground_to_term(tp)
            .ok_or_else(|| SparqlError::eval("variable where a ground term was expected"))?;
        Ok(self.g.intern(&term))
    }

    // ---- property paths ---------------------------------------------------

    /// All `(start, end)` node pairs related by `path`, restricted by the
    /// optionally bound endpoints.
    fn eval_path(
        &self,
        path: &Path,
        s: Option<TermId>,
        o: Option<TermId>,
    ) -> Vec<(TermId, TermId)> {
        match path {
            Path::Iri(p) => match self.g.lookup_iri(p) {
                Some(pid) => self
                    .g
                    .match_pattern(s, Some(pid), o)
                    .into_iter()
                    .map(|t| (t[0], t[2]))
                    .collect(),
                None => Vec::new(),
            },
            // Variable predicates are handled in match_triple_pattern; a
            // bare variable reaching here matches nothing rather than
            // panicking.
            Path::Var(_) => Vec::new(),
            Path::Inverse(inner) => self
                .eval_path(inner, o, s)
                .into_iter()
                .map(|(a, b)| (b, a))
                .collect(),
            Path::Sequence(first, second) => {
                let mut out = Vec::new();
                let mut seen = HashSet::new();
                for (a, mid) in self.eval_path(first, s, None) {
                    if self.guard_tripped() {
                        break;
                    }
                    for (_, b) in self.eval_path(second, Some(mid), o) {
                        if seen.insert((a, b)) {
                            out.push((a, b));
                        }
                    }
                }
                out
            }
            Path::Alternative(l, r) => {
                let mut out = self.eval_path(l, s, o);
                let seen: HashSet<(TermId, TermId)> = out.iter().copied().collect();
                for pair in self.eval_path(r, s, o) {
                    if !seen.contains(&pair) {
                        out.push(pair);
                    }
                }
                out
            }
            Path::ZeroOrOne(inner) => {
                let mut out = self.zero_length_pairs(s, o);
                let seen: HashSet<(TermId, TermId)> = out.iter().copied().collect();
                for pair in self.eval_path(inner, s, o) {
                    if !seen.contains(&pair) {
                        out.push(pair);
                    }
                }
                out
            }
            Path::ZeroOrMore(inner) => self.closure_pairs(inner, s, o, true),
            Path::OneOrMore(inner) => self.closure_pairs(inner, s, o, false),
            Path::Negated(members) => {
                let forward: HashSet<TermId> = members
                    .iter()
                    .filter(|(_, inv)| !inv)
                    .filter_map(|(iri, _)| self.g.lookup_iri(iri))
                    .collect();
                let has_forward = members.iter().any(|(_, inv)| !inv);
                let inverse: HashSet<TermId> = members
                    .iter()
                    .filter(|(_, inv)| *inv)
                    .filter_map(|(iri, _)| self.g.lookup_iri(iri))
                    .collect();
                let has_inverse = members.iter().any(|(_, inv)| *inv);
                let mut out = Vec::new();
                let mut seen = HashSet::new();
                if has_forward {
                    for [ms, mp, mo] in self.g.match_pattern(s, None, o) {
                        if !forward.contains(&mp) && seen.insert((ms, mo)) {
                            out.push((ms, mo));
                        }
                    }
                }
                if has_inverse {
                    for [ms, mp, mo] in self.g.match_pattern(o, None, s) {
                        if !inverse.contains(&mp) && seen.insert((mo, ms)) {
                            out.push((mo, ms));
                        }
                    }
                }
                out
            }
        }
    }

    /// Pairs related by a zero-length path: every graph node to itself.
    fn zero_length_pairs(&self, s: Option<TermId>, o: Option<TermId>) -> Vec<(TermId, TermId)> {
        match (s, o) {
            (Some(a), Some(b)) => {
                if a == b {
                    vec![(a, a)]
                } else {
                    Vec::new()
                }
            }
            (Some(a), None) => vec![(a, a)],
            (None, Some(b)) => vec![(b, b)],
            (None, None) => self.all_nodes().into_iter().map(|n| (n, n)).collect(),
        }
    }

    fn all_nodes(&self) -> Vec<TermId> {
        let mut out: std::collections::BTreeSet<TermId> = Default::default();
        for [s, _, o] in self.g.iter_ids() {
            out.insert(s);
            out.insert(o);
        }
        out.into_iter().collect()
    }

    /// Transitive closure pairs for `inner*` / `inner+`.
    fn closure_pairs(
        &self,
        inner: &Path,
        s: Option<TermId>,
        o: Option<TermId>,
        include_zero: bool,
    ) -> Vec<(TermId, TermId)> {
        let starts: Vec<TermId> = match (s, o) {
            (Some(a), _) => vec![a],
            (None, Some(_)) => {
                // Walk backward from the object instead.
                let inv = Path::Inverse(Box::new(inner.clone()));
                return self
                    .closure_pairs(&inv, o, s, include_zero)
                    .into_iter()
                    .map(|(a, b)| (b, a))
                    .collect();
            }
            (None, None) => self.all_nodes(),
        };
        let mut out = Vec::new();
        for start in starts {
            if self.guard_tripped() {
                break;
            }
            let mut reached: HashSet<TermId> = HashSet::new();
            let mut frontier = vec![start];
            if include_zero {
                reached.insert(start);
            }
            while let Some(node) = frontier.pop() {
                if self.guard_tripped() {
                    break;
                }
                for (_, next) in self.eval_path(inner, Some(node), None) {
                    if reached.insert(next) {
                        frontier.push(next);
                    }
                }
            }
            for end in reached {
                match o {
                    Some(target) if end != target => {}
                    _ => out.push((start, end)),
                }
            }
        }
        out.sort();
        out
    }

    // ---- expressions ----------------------------------------------------

    /// Evaluates an expression; `None` is the SPARQL "error" value.
    fn eval_expr(&mut self, e: &Expr, b: &Binding) -> Option<Value> {
        match e {
            Expr::Var(v) => self.vars.get(v).and_then(|s| b[s]).map(Value::Term),
            Expr::Iri(iri) => Some(Value::Term(self.g.intern_iri(iri))),
            Expr::Literal(l) => Some(self.literal_value(l)),
            Expr::Or(x, y) => {
                let l = self.eval_expr(x, b).and_then(|v| ebv(&self.g, &v));
                let r = self.eval_expr(y, b).and_then(|v| ebv(&self.g, &v));
                match (l, r) {
                    (Some(true), _) | (_, Some(true)) => Some(Value::Bool(true)),
                    (Some(false), Some(false)) => Some(Value::Bool(false)),
                    _ => None,
                }
            }
            Expr::And(x, y) => {
                let l = self.eval_expr(x, b).and_then(|v| ebv(&self.g, &v));
                let r = self.eval_expr(y, b).and_then(|v| ebv(&self.g, &v));
                match (l, r) {
                    (Some(false), _) | (_, Some(false)) => Some(Value::Bool(false)),
                    (Some(true), Some(true)) => Some(Value::Bool(true)),
                    _ => None,
                }
            }
            Expr::Not(x) => {
                let v = self.eval_expr(x, b)?;
                ebv(&self.g, &v).map(|t| Value::Bool(!t))
            }
            Expr::Compare(op, x, y) => {
                let l = self.eval_expr(x, b)?;
                let r = self.eval_expr(y, b)?;
                self.compare(*op, &l, &r).map(Value::Bool)
            }
            Expr::Arith(op, x, y) => {
                let l = self.eval_expr(x, b)?;
                let r = self.eval_expr(y, b)?;
                self.arith(*op, &l, &r)
            }
            Expr::UnaryMinus(x) => {
                let v = self.eval_expr(x, b)?;
                match v {
                    Value::Int(i) => Some(Value::Int(-i)),
                    other => as_numeric(&self.g, &other).map(|n| Value::Num(-n)),
                }
            }
            Expr::In(x, list, negated) => {
                let needle = self.eval_expr(x, b)?;
                let mut found = false;
                for item in list {
                    let v = self.eval_expr(item, b)?;
                    if values_equal(&self.g, &needle, &v) == Some(true) {
                        found = true;
                        break;
                    }
                }
                Some(Value::Bool(found != *negated))
            }
            Expr::Call(builtin, args) => self.call(*builtin, args, b),
            Expr::Exists(group, negated) => {
                let found = match self.eval_group(group, vec![b.clone()], None) {
                    Ok(rows) => !rows.is_empty(),
                    Err(_) => false,
                };
                Some(Value::Bool(found != *negated))
            }
            Expr::Aggregate(_) => None, // only valid in aggregation context
        }
    }

    fn literal_value(&mut self, l: &LiteralPattern) -> Value {
        match (&l.language, &l.datatype) {
            (Some(lang), _) => Value::Str {
                s: l.lexical.clone(),
                lang: Some(lang.clone()),
            },
            (None, None) => Value::Str {
                s: l.lexical.clone(),
                lang: None,
            },
            (None, Some(dt)) if dt == xsd::BOOLEAN => {
                Value::Bool(l.lexical == "true" || l.lexical == "1")
            }
            (None, Some(dt)) if xsd::is_integer_type(dt) => {
                l.lexical.parse().map(Value::Int).unwrap_or(Value::Str {
                    s: l.lexical.clone(),
                    lang: None,
                })
            }
            (None, Some(dt)) if xsd::is_numeric_type(dt) => {
                l.lexical.parse().map(Value::Num).unwrap_or(Value::Str {
                    s: l.lexical.clone(),
                    lang: None,
                })
            }
            (None, Some(dt)) => {
                let term = Term::Literal(feo_rdf::Literal::typed(
                    l.lexical.clone(),
                    feo_rdf::Iri::new(dt.clone()),
                ));
                Value::Term(self.g.intern(&term))
            }
        }
    }

    fn compare(&self, op: CompareOp, l: &Value, r: &Value) -> Option<bool> {
        use std::cmp::Ordering;
        match op {
            CompareOp::Eq => values_equal(&self.g, l, r),
            CompareOp::Ne => values_equal(&self.g, l, r).map(|b| !b),
            _ => {
                let ord = values_compare(&self.g, l, r)?;
                Some(match op {
                    CompareOp::Lt => ord == Ordering::Less,
                    CompareOp::Le => ord != Ordering::Greater,
                    CompareOp::Gt => ord == Ordering::Greater,
                    CompareOp::Ge => ord != Ordering::Less,
                    // Eq/Ne are handled by the outer match arms.
                    CompareOp::Eq | CompareOp::Ne => return None,
                })
            }
        }
    }

    fn arith(&self, op: ArithOp, l: &Value, r: &Value) -> Option<Value> {
        // Integer arithmetic stays integral except division.
        if let (Value::Int(a), Value::Int(b)) = (l, r) {
            return match op {
                ArithOp::Add => Some(Value::Int(a.checked_add(*b)?)),
                ArithOp::Sub => Some(Value::Int(a.checked_sub(*b)?)),
                ArithOp::Mul => Some(Value::Int(a.checked_mul(*b)?)),
                ArithOp::Div => {
                    if *b == 0 {
                        None
                    } else {
                        Some(Value::Num(*a as f64 / *b as f64))
                    }
                }
            };
        }
        let a = as_numeric(&self.g, l)?;
        let b = as_numeric(&self.g, r)?;
        // Preserve integrality when both terms are integer-typed literals.
        let both_int = as_integer(&self.g, l).is_some() && as_integer(&self.g, r).is_some();
        let result = match op {
            ArithOp::Add => a + b,
            ArithOp::Sub => a - b,
            ArithOp::Mul => a * b,
            ArithOp::Div => {
                if b == 0.0 {
                    return None;
                }
                a / b
            }
        };
        if both_int && result.fract() == 0.0 && !matches!(op, ArithOp::Div) {
            Some(Value::Int(result as i64))
        } else {
            Some(Value::Num(result))
        }
    }

    fn call(&mut self, builtin: Builtin, args: &[Expr], b: &Binding) -> Option<Value> {
        use Builtin::*;
        // BOUND and COALESCE/IF must control evaluation of their args.
        match builtin {
            Bound => {
                let Expr::Var(v) = &args[0] else { return None };
                let bound = self.vars.get(v).and_then(|s| b[s]).is_some();
                return Some(Value::Bool(bound));
            }
            Coalesce => {
                for a in args {
                    if let Some(v) = self.eval_expr(a, b) {
                        return Some(v);
                    }
                }
                return None;
            }
            If => {
                if args.len() != 3 {
                    return None;
                }
                let c = self.eval_expr(&args[0], b)?;
                return match ebv(&self.g, &c)? {
                    true => self.eval_expr(&args[1], b),
                    false => self.eval_expr(&args[2], b),
                };
            }
            _ => {}
        }

        let vals: Option<Vec<Value>> = args.iter().map(|a| self.eval_expr(a, b)).collect();
        let vals = vals?;
        match builtin {
            // Already returned from the lazy-evaluation block above.
            Bound | Coalesce | If => None,
            Str => str_builtin(&self.g, vals.first()?).map(|s| Value::Str { s, lang: None }),
            Lang => {
                let v = vals.first()?;
                let lang = match v {
                    Value::Term(id) => match self.g.term(*id) {
                        Term::Literal(l) => l.language().unwrap_or("").to_string(),
                        _ => return None,
                    },
                    Value::Str { lang, .. } => lang.clone().unwrap_or_default(),
                    _ => return None,
                };
                Some(Value::Str {
                    s: lang,
                    lang: None,
                })
            }
            LangMatches => {
                let (tag, _) = as_string(&self.g, vals.first()?)?;
                let (range, _) = as_string(&self.g, vals.get(1)?)?;
                let m = if range == "*" {
                    !tag.is_empty()
                } else {
                    tag.eq_ignore_ascii_case(&range)
                        || tag
                            .to_ascii_lowercase()
                            .starts_with(&format!("{}-", range.to_ascii_lowercase()))
                };
                Some(Value::Bool(m))
            }
            Datatype => {
                let v = vals.first()?;
                let dt = match v {
                    Value::Term(id) => match self.g.term(*id) {
                        Term::Literal(l) => l.datatype().as_str().to_string(),
                        _ => return None,
                    },
                    Value::Bool(_) => xsd::BOOLEAN.to_string(),
                    Value::Int(_) => xsd::INTEGER.to_string(),
                    Value::Num(_) => xsd::DOUBLE.to_string(),
                    Value::Str { lang: None, .. } => xsd::STRING.to_string(),
                    Value::Str { lang: Some(_), .. } => {
                        feo_rdf::vocab::rdf::LANG_STRING.to_string()
                    }
                    Value::IriStr(_) => return None,
                };
                Some(Value::IriStr(dt))
            }
            Iri => {
                let s = str_builtin(&self.g, vals.first()?)?;
                Some(Value::IriStr(s))
            }
            BNode => {
                let id = self.g.fresh_bnode();
                Some(Value::Term(id))
            }
            StrLen => {
                let (s, _) = as_string(&self.g, vals.first()?)?;
                Some(Value::Int(s.chars().count() as i64))
            }
            UCase => {
                let (s, lang) = as_string(&self.g, vals.first()?)?;
                Some(Value::Str {
                    s: s.to_uppercase(),
                    lang,
                })
            }
            LCase => {
                let (s, lang) = as_string(&self.g, vals.first()?)?;
                Some(Value::Str {
                    s: s.to_lowercase(),
                    lang,
                })
            }
            Contains => {
                let (h, _) = as_string(&self.g, vals.first()?)?;
                let (n, _) = as_string(&self.g, vals.get(1)?)?;
                Some(Value::Bool(h.contains(&n)))
            }
            StrStarts => {
                let (h, _) = as_string(&self.g, vals.first()?)?;
                let (n, _) = as_string(&self.g, vals.get(1)?)?;
                Some(Value::Bool(h.starts_with(&n)))
            }
            StrEnds => {
                let (h, _) = as_string(&self.g, vals.first()?)?;
                let (n, _) = as_string(&self.g, vals.get(1)?)?;
                Some(Value::Bool(h.ends_with(&n)))
            }
            StrBefore => {
                let (h, lang) = as_string(&self.g, vals.first()?)?;
                let (n, _) = as_string(&self.g, vals.get(1)?)?;
                Some(match h.find(&n) {
                    Some(i) => Value::Str {
                        s: h[..i].to_string(),
                        lang,
                    },
                    None => Value::Str {
                        s: String::new(),
                        lang: None,
                    },
                })
            }
            StrAfter => {
                let (h, lang) = as_string(&self.g, vals.first()?)?;
                let (n, _) = as_string(&self.g, vals.get(1)?)?;
                Some(match h.find(&n) {
                    Some(i) => Value::Str {
                        s: h[i + n.len()..].to_string(),
                        lang,
                    },
                    None => Value::Str {
                        s: String::new(),
                        lang: None,
                    },
                })
            }
            SubStr => {
                let (s, lang) = as_string(&self.g, vals.first()?)?;
                let start = as_integer(&self.g, vals.get(1)?)?;
                let chars: Vec<char> = s.chars().collect();
                let from = (start.max(1) - 1) as usize;
                let taken: String = match vals.get(2) {
                    Some(len_v) => {
                        let len = as_integer(&self.g, len_v)?.max(0) as usize;
                        chars.iter().skip(from).take(len).collect()
                    }
                    None => chars.iter().skip(from).collect(),
                };
                Some(Value::Str { s: taken, lang })
            }
            Replace => {
                let (s, lang) = as_string(&self.g, vals.first()?)?;
                let (pat, _) = as_string(&self.g, vals.get(1)?)?;
                let (rep, _) = as_string(&self.g, vals.get(2)?)?;
                let flags = match vals.get(3) {
                    Some(v) => as_string(&self.g, v)?.0,
                    None => String::new(),
                };
                let re = crate::regexlite::Regex::new(&pat, &flags).ok()?;
                Some(Value::Str {
                    s: re.replace_all(&s, &rep),
                    lang,
                })
            }
            Concat => {
                let mut out = String::new();
                for v in &vals {
                    out.push_str(&str_builtin(&self.g, v)?);
                }
                Some(Value::Str { s: out, lang: None })
            }
            Regex => {
                let (text, _) = as_string(&self.g, vals.first()?)?;
                let (pat, _) = as_string(&self.g, vals.get(1)?)?;
                let flags = match vals.get(2) {
                    Some(v) => as_string(&self.g, v)?.0,
                    None => String::new(),
                };
                let re = crate::regexlite::Regex::new(&pat, &flags).ok()?;
                Some(Value::Bool(re.is_match(&text)))
            }
            Abs => as_numeric(&self.g, vals.first()?).map(|n| Value::Num(n.abs())),
            Ceil => as_numeric(&self.g, vals.first()?).map(|n| Value::Num(n.ceil())),
            Floor => as_numeric(&self.g, vals.first()?).map(|n| Value::Num(n.floor())),
            Round => as_numeric(&self.g, vals.first()?).map(|n| Value::Num(n.round())),
            SameTerm => {
                let a = vals.first()?;
                let c = vals.get(1)?;
                match (a, c) {
                    (Value::Term(x), Value::Term(y)) => Some(Value::Bool(x == y)),
                    _ => values_equal(&self.g, a, c).map(Value::Bool),
                }
            }
            IsIri => Some(Value::Bool(match vals.first()? {
                Value::Term(id) => self.g.term(*id).is_iri(),
                Value::IriStr(_) => true,
                _ => false,
            })),
            IsBlank => Some(Value::Bool(match vals.first()? {
                Value::Term(id) => self.g.term(*id).is_blank(),
                _ => false,
            })),
            IsLiteral => Some(Value::Bool(match vals.first()? {
                Value::Term(id) => self.g.term(*id).is_literal(),
                Value::Bool(_) | Value::Int(_) | Value::Num(_) | Value::Str { .. } => true,
                Value::IriStr(_) => false,
            })),
            IsNumeric => Some(Value::Bool(as_numeric(&self.g, vals.first()?).is_some())),
        }
    }

    // ---- SELECT finalization ---------------------------------------------

    fn select(
        &mut self,
        q: &Query,
        projection: &Projection,
        distinct: bool,
        rows: Vec<Binding>,
    ) -> Result<QueryResult> {
        let aggregating = !q.modifiers.group_by.is_empty()
            || matches!(projection, Projection::Items(items)
                if items.iter().any(|i| matches!(i, ProjectionItem::Expr(e, _) if contains_aggregate(e))));

        let rows = if aggregating {
            self.aggregate_rows(q, projection, rows)?
        } else {
            // Extend rows with SELECT expression results.
            let mut rows = rows;
            if let Projection::Items(items) = projection {
                for item in items {
                    if let ProjectionItem::Expr(e, v) = item {
                        let slot = self.vars.get(v).ok_or_else(|| {
                            SparqlError::eval(format!(
                                "SELECT expression variable ?{v} is not registered"
                            ))
                        })?;
                        for b in &mut rows {
                            if let Some(val) = self.eval_expr(e, &b.clone()) {
                                b[slot] = Some(val.into_term_id(&mut self.g));
                            }
                        }
                    }
                }
            }
            rows
        };

        // ORDER BY over full bindings.
        let mut rows = rows;
        if !q.modifiers.order_by.is_empty() {
            let mut keyed: Vec<(Vec<crate::value::OrderKey>, BoolMask, Binding)> = Vec::new();
            for b in rows {
                let mut keys = Vec::new();
                let mut descs = Vec::new();
                for oc in &q.modifiers.order_by {
                    let v = self.eval_expr(&oc.expr, &b);
                    keys.push(order_key(&self.g, v.as_ref()));
                    descs.push(oc.descending);
                }
                keyed.push((keys, descs, b));
            }
            keyed.sort_by(|(ka, da, _), (kb, _, _)| {
                for ((a, b), desc) in ka.iter().zip(kb.iter()).zip(da.iter()) {
                    let ord = a.cmp(b);
                    let ord = if *desc { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            rows = keyed.into_iter().map(|(_, _, b)| b).collect();
        }

        // Projection.
        let (names, slots): (Vec<String>, Vec<usize>) = match projection {
            Projection::All => {
                let mut pairs: Vec<(String, usize)> = self
                    .vars
                    .names
                    .iter()
                    .enumerate()
                    .filter(|(_, n)| !n.starts_with("_:"))
                    .map(|(i, n)| (n.clone(), i))
                    .collect();
                pairs.sort_by_key(|a| a.1);
                pairs.into_iter().unzip()
            }
            Projection::Items(items) => {
                let pairs: Vec<(String, usize)> = items
                    .iter()
                    .map(|i| {
                        let name = match i {
                            ProjectionItem::Var(v) => v.clone(),
                            ProjectionItem::Expr(_, v) => v.clone(),
                        };
                        let slot = self.vars.get(&name).ok_or_else(|| {
                            SparqlError::eval(format!(
                                "projected variable ?{name} is not registered"
                            ))
                        })?;
                        Ok((name, slot))
                    })
                    .collect::<Result<_>>()?;
                pairs.into_iter().unzip()
            }
        };

        let mut projected: Vec<Vec<Option<TermId>>> = rows
            .into_iter()
            .map(|b| slots.iter().map(|&s| b[s]).collect())
            .collect();

        if distinct {
            let mut seen = HashSet::new();
            projected.retain(|r| seen.insert(r.clone()));
        }

        let offset = q.modifiers.offset.unwrap_or(0);
        let limit = q.modifiers.limit.unwrap_or(usize::MAX);
        let sliced: Vec<Vec<Option<TermId>>> =
            projected.into_iter().skip(offset).take(limit).collect();

        let table = SolutionTable {
            vars: names,
            rows: sliced
                .into_iter()
                .map(|r| {
                    r.into_iter()
                        .map(|c| c.map(|id| self.g.term(id).clone()))
                        .collect()
                })
                .collect(),
        };
        Ok(QueryResult::Solutions(table))
    }

    fn aggregate_rows(
        &mut self,
        q: &Query,
        projection: &Projection,
        rows: Vec<Binding>,
    ) -> Result<Vec<Binding>> {
        // Compute group keys.
        let mut groups: Vec<(Vec<Option<TermId>>, Vec<Binding>)> = Vec::new();
        let mut index: HashMap<Vec<Option<TermId>>, usize> = HashMap::new();
        for b in rows {
            let mut key = Vec::new();
            for gc in &q.modifiers.group_by {
                let v = match gc {
                    GroupCondition::Var(v) => self.vars.get(v).and_then(|s| b[s]),
                    GroupCondition::Expr(e, _) => {
                        self.eval_expr(e, &b).map(|v| v.into_term_id(&mut self.g))
                    }
                };
                key.push(v);
            }
            match index.get(&key) {
                Some(&i) => groups[i].1.push(b),
                None => {
                    index.insert(key.clone(), groups.len());
                    groups.push((key, vec![b]));
                }
            }
        }
        // With no GROUP BY but aggregates present: one implicit group.
        if q.modifiers.group_by.is_empty() && groups.is_empty() {
            groups.push((Vec::new(), Vec::new()));
        } else if q.modifiers.group_by.is_empty() {
            let all: Vec<Binding> = groups.drain(..).flat_map(|(_, v)| v).collect();
            groups.push((Vec::new(), all));
        }

        let mut out = Vec::new();
        'group: for (key, members) in groups {
            let mut row: Binding = vec![None; self.vars.len()];
            // Bind group keys.
            for (gc, k) in q.modifiers.group_by.iter().zip(key.iter()) {
                match gc {
                    GroupCondition::Var(v) => {
                        if let Some(slot) = self.vars.get(v) {
                            row[slot] = *k;
                        }
                    }
                    GroupCondition::Expr(_, Some(alias)) => {
                        if let Some(slot) = self.vars.get(alias) {
                            row[slot] = *k;
                        }
                    }
                    GroupCondition::Expr(_, None) => {}
                }
            }
            // HAVING.
            for h in &q.modifiers.having {
                let v = self.eval_group_expr(h, &members, &row);
                if v.and_then(|v| ebv(&self.g, &v)) != Some(true) {
                    continue 'group;
                }
            }
            // Projection expressions.
            if let Projection::Items(items) = projection {
                for item in items {
                    if let ProjectionItem::Expr(e, v) = item {
                        let slot = self.vars.get(v).ok_or_else(|| {
                            SparqlError::eval(format!(
                                "aggregate projection variable ?{v} is not registered"
                            ))
                        })?;
                        if let Some(val) = self.eval_group_expr(e, &members, &row) {
                            row[slot] = Some(val.into_term_id(&mut self.g));
                        }
                    }
                }
            }
            out.push(row);
        }
        Ok(out)
    }

    /// Expression evaluation inside a group: aggregates compute over the
    /// member rows, plain variables resolve from the group-key row.
    fn eval_group_expr(
        &mut self,
        e: &Expr,
        members: &[Binding],
        keyrow: &Binding,
    ) -> Option<Value> {
        match e {
            Expr::Aggregate(agg) => self.eval_aggregate(agg, members),
            Expr::Or(a, x) => {
                let l = self
                    .eval_group_expr(a, members, keyrow)
                    .and_then(|v| ebv(&self.g, &v));
                let r = self
                    .eval_group_expr(x, members, keyrow)
                    .and_then(|v| ebv(&self.g, &v));
                match (l, r) {
                    (Some(true), _) | (_, Some(true)) => Some(Value::Bool(true)),
                    (Some(false), Some(false)) => Some(Value::Bool(false)),
                    _ => None,
                }
            }
            Expr::And(a, x) => {
                let l = self
                    .eval_group_expr(a, members, keyrow)
                    .and_then(|v| ebv(&self.g, &v));
                let r = self
                    .eval_group_expr(x, members, keyrow)
                    .and_then(|v| ebv(&self.g, &v));
                match (l, r) {
                    (Some(false), _) | (_, Some(false)) => Some(Value::Bool(false)),
                    (Some(true), Some(true)) => Some(Value::Bool(true)),
                    _ => None,
                }
            }
            Expr::Not(a) => {
                let v = self.eval_group_expr(a, members, keyrow)?;
                ebv(&self.g, &v).map(|t| Value::Bool(!t))
            }
            Expr::Compare(op, a, x) => {
                let l = self.eval_group_expr(a, members, keyrow)?;
                let r = self.eval_group_expr(x, members, keyrow)?;
                self.compare(*op, &l, &r).map(Value::Bool)
            }
            Expr::Arith(op, a, x) => {
                let l = self.eval_group_expr(a, members, keyrow)?;
                let r = self.eval_group_expr(x, members, keyrow)?;
                self.arith(*op, &l, &r)
            }
            other => self.eval_expr(other, keyrow),
        }
    }

    fn eval_aggregate(&mut self, agg: &AggregateExpr, members: &[Binding]) -> Option<Value> {
        let mut values: Vec<Value> = Vec::new();
        match &agg.expr {
            None => {
                // COUNT(*)
                return Some(Value::Int(members.len() as i64));
            }
            Some(e) => {
                for m in members {
                    if let Some(v) = self.eval_expr(e, m) {
                        values.push(v);
                    }
                }
            }
        }
        if agg.distinct {
            let mut seen: Vec<Value> = Vec::new();
            values.retain(|v| {
                if seen
                    .iter()
                    .any(|s| values_equal(&self.g, s, v) == Some(true))
                {
                    false
                } else {
                    seen.push(v.clone());
                    true
                }
            });
        }
        match agg.kind {
            AggregateKind::Count => Some(Value::Int(values.len() as i64)),
            AggregateKind::Sum => {
                let mut acc = 0.0;
                for v in &values {
                    acc += as_numeric(&self.g, v)?;
                }
                Some(if acc.fract() == 0.0 {
                    Value::Int(acc as i64)
                } else {
                    Value::Num(acc)
                })
            }
            AggregateKind::Avg => {
                if values.is_empty() {
                    return Some(Value::Int(0));
                }
                let mut acc = 0.0;
                for v in &values {
                    acc += as_numeric(&self.g, v)?;
                }
                Some(Value::Num(acc / values.len() as f64))
            }
            AggregateKind::Min => {
                let mut best: Option<Value> = None;
                for v in values {
                    best = Some(match best {
                        None => v,
                        Some(b) => {
                            if values_compare(&self.g, &v, &b) == Some(std::cmp::Ordering::Less) {
                                v
                            } else {
                                b
                            }
                        }
                    });
                }
                best
            }
            AggregateKind::Max => {
                let mut best: Option<Value> = None;
                for v in values {
                    best = Some(match best {
                        None => v,
                        Some(b) => {
                            if values_compare(&self.g, &v, &b) == Some(std::cmp::Ordering::Greater)
                            {
                                v
                            } else {
                                b
                            }
                        }
                    });
                }
                best
            }
            AggregateKind::Sample => values.into_iter().next(),
            AggregateKind::GroupConcat => {
                let sep = agg.separator.clone().unwrap_or_else(|| " ".to_string());
                let parts: Option<Vec<String>> =
                    values.iter().map(|v| str_builtin(&self.g, v)).collect();
                Some(Value::Str {
                    s: parts?.join(&sep),
                    lang: None,
                })
            }
        }
    }

    // ---- CONSTRUCT --------------------------------------------------------

    fn construct(&mut self, template: &[TriplePattern], rows: Vec<Binding>) -> Result<QueryResult> {
        let mut out = Graph::new();
        for (row_idx, b) in rows.iter().enumerate() {
            for tp in template {
                let s = self.template_term(&tp.subject, b, row_idx);
                let p = match &tp.path {
                    Path::Iri(iri) => Some(Term::iri(iri.clone())),
                    Path::Var(v) => self
                        .vars
                        .get(v)
                        .and_then(|slot| b[slot])
                        .map(|id| self.g.term(id).clone()),
                    _ => None,
                };
                let o = self.template_term(&tp.object, b, row_idx);
                if let (Some(s), Some(p), Some(o)) = (s, p, o) {
                    if s.is_resource() && p.is_iri() {
                        out.insert(&Triple {
                            subject: s,
                            predicate: p,
                            object: o,
                        });
                    }
                }
            }
        }
        Ok(QueryResult::Graph(Box::new(out)))
    }

    fn template_term(&self, tp: &TermPattern, b: &Binding, row: usize) -> Option<Term> {
        match tp {
            TermPattern::Var(v) => self
                .vars
                .get(v)
                .and_then(|s| b[s])
                .map(|id| self.g.term(id).clone()),
            TermPattern::Blank(l) => Some(Term::bnode(format!("c{row}_{l}"))),
            TermPattern::Iri(i) => Some(Term::iri(i.clone())),
            TermPattern::Literal(l) => Some(literal_pattern_to_term(l)),
        }
    }
}

/// Row-sort helper alias (descending flags per ORDER BY condition).
type BoolMask = Vec<bool>;

/// A plan is executable against `n` patterns when it covers each
/// pattern exactly once.
fn bgp_plan_matches(bp: &BgpPlan, n: usize) -> bool {
    if bp.steps.len() != n {
        return false;
    }
    let mut seen = vec![false; n];
    for step in &bp.steps {
        let Some(slot) = seen.get_mut(step.pattern) else {
            return false;
        };
        if *slot {
            return false;
        }
        *slot = true;
    }
    true
}

/// Binds `val` into `slot` (when the position is a variable), reporting
/// false on a conflict with an existing binding — the shared-variable
/// case (`?x p ?x`) and probe-side rebinding both funnel through here.
fn bind(b: &mut Binding, slot: Option<usize>, val: TermId) -> bool {
    let Some(slot) = slot else { return true };
    match b[slot] {
        None => {
            b[slot] = Some(val);
            true
        }
        Some(existing) => existing == val,
    }
}

/// The scan column a merge join keys on, given which endpoints the scan
/// was narrowed by: per-subject `spo` scans sort by object, per-object
/// (and full-predicate `pos`) scans sort by subject and object
/// respectively — mirroring the planner's `merge_worthwhile` analysis
/// of the hexastore permutations.
fn merge_key_col(s_ground: Option<TermId>, o_ground: Option<TermId>) -> usize {
    if s_ground.is_some() {
        2
    } else if o_ground.is_some() {
        0
    } else {
        2
    }
}

/// Sorted key directory over one column of a predicate scan: distinct
/// keys ascending, `hits(key)` returning that key's scan positions in
/// ascending order. Single-layer scans arrive presorted and keep their
/// identity order for free; layered concatenations (overlay deltas,
/// ledger layers) get one stable sort, which preserves per-key
/// ascending scan positions — the invariant that keeps merge-join
/// output byte-identical to the hash path's index-map probes.
struct KeyDirectory {
    keys: Vec<TermId>,
    starts: Vec<usize>,
    order: Vec<usize>,
}

impl KeyDirectory {
    fn build(scan: &[[TermId; 3]], col: usize) -> KeyDirectory {
        let mut order: Vec<usize> = (0..scan.len()).collect();
        if scan.windows(2).any(|w| w[0][col] > w[1][col]) {
            order.sort_by_key(|&i| scan[i][col]);
        }
        let mut keys: Vec<TermId> = Vec::new();
        let mut starts: Vec<usize> = Vec::new();
        for (pos, &i) in order.iter().enumerate() {
            let k = scan[i][col];
            if keys.last() != Some(&k) {
                keys.push(k);
                starts.push(pos);
            }
        }
        starts.push(order.len());
        KeyDirectory {
            keys,
            starts,
            order,
        }
    }

    fn hits(&self, key: TermId) -> &[usize] {
        match self.keys.binary_search(&key) {
            Ok(k) => &self.order[self.starts[k]..self.starts[k + 1]],
            Err(_) => &[],
        }
    }
}

/// Hash index over one column of a scan (0 = subject, 2 = object).
fn index_scan(scan: &[[TermId; 3]], col: usize) -> HashMap<TermId, Vec<usize>> {
    let mut map: HashMap<TermId, Vec<usize>> = HashMap::new();
    for (i, t) in scan.iter().enumerate() {
        map.entry(t[col]).or_default().push(i);
    }
    map
}

/// Solution charging is batched: a guard call per input binding costs
/// ~2% on small queries, so produced rows accumulate locally and are
/// charged every `CHARGE_BATCH` rows (bounding overshoot to one batch
/// plus one binding's matches per charging thread).
const CHARGE_BATCH: usize = 256;

/// Flushes a worker's accumulated row count into the shared guard.
fn charge(guard: Option<&Guard>, uncharged: &mut usize) -> std::result::Result<(), Exhausted> {
    let n = std::mem::take(uncharged);
    match guard {
        Some(g) if n > 0 => g.add_solutions(n as u64),
        _ => Ok(()),
    }
}

/// Sharded parallel dual of [`index_scan`]: each worker hashes one
/// contiguous chunk of the scan, keying hits by **global** scan index.
/// Probing every shard in chunk order yields hit indices in ascending
/// order — exactly the sequence the single-map build produces.
fn build_shards(
    workers: usize,
    scan: &[[TermId; 3]],
    col: usize,
) -> Vec<HashMap<TermId, Vec<usize>>> {
    map_chunks(workers, PARALLEL_MIN_INPUT, scan, |start, chunk| {
        let mut map: HashMap<TermId, Vec<usize>> = HashMap::new();
        for (i, t) in chunk.iter().enumerate() {
            map.entry(t[col]).or_default().push(start + i);
        }
        map
    })
}

fn contains_aggregate(e: &Expr) -> bool {
    match e {
        Expr::Aggregate(_) => true,
        Expr::Or(a, b) | Expr::And(a, b) | Expr::Compare(_, a, b) | Expr::Arith(_, a, b) => {
            contains_aggregate(a) || contains_aggregate(b)
        }
        Expr::Not(a) | Expr::UnaryMinus(a) => contains_aggregate(a),
        Expr::In(a, list, _) => contains_aggregate(a) || list.iter().any(contains_aggregate),
        Expr::Call(_, args) => args.iter().any(contains_aggregate),
        _ => false,
    }
}

fn ground_to_term(tp: &TermPattern) -> Option<Term> {
    match tp {
        TermPattern::Iri(i) => Some(Term::iri(i.clone())),
        TermPattern::Blank(l) => Some(Term::bnode(l.clone())),
        TermPattern::Literal(l) => Some(literal_pattern_to_term(l)),
        TermPattern::Var(_) => None,
    }
}

fn literal_pattern_to_term(l: &LiteralPattern) -> Term {
    match (&l.language, &l.datatype) {
        (Some(lang), _) => Term::Literal(feo_rdf::Literal::lang(l.lexical.clone(), lang.clone())),
        (None, Some(dt)) => Term::Literal(feo_rdf::Literal::typed(
            l.lexical.clone(),
            feo_rdf::Iri::new(dt.clone()),
        )),
        (None, None) => Term::simple(l.lexical.clone()),
    }
}
