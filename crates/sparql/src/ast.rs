//! SPARQL abstract syntax tree.
//!
//! The AST stays close to the grammar; translation to an executable
//! algebra happens during evaluation in [`crate::eval`]. Terms in the AST are string
//! based (IRIs already resolved against the prologue), interning happens
//! at evaluation time against the queried graph.

/// A parsed query: prologue already folded in (IRIs resolved).
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub form: QueryForm,
    pub where_pattern: GroupPattern,
    pub modifiers: Modifiers,
}

#[derive(Debug, Clone, PartialEq)]
pub enum QueryForm {
    Select {
        distinct: bool,
        reduced: bool,
        projection: Projection,
    },
    Ask,
    Construct {
        template: Vec<TriplePattern>,
    },
}

#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    /// `SELECT *`
    All,
    /// Explicit list of variables / expressions.
    Items(Vec<ProjectionItem>),
}

#[derive(Debug, Clone, PartialEq)]
pub enum ProjectionItem {
    Var(String),
    /// `(expr AS ?v)`
    Expr(Expr, String),
}

/// Solution modifiers.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Modifiers {
    pub group_by: Vec<GroupCondition>,
    pub having: Vec<Expr>,
    pub order_by: Vec<OrderCondition>,
    pub limit: Option<usize>,
    pub offset: Option<usize>,
}

#[derive(Debug, Clone, PartialEq)]
pub enum GroupCondition {
    Var(String),
    /// `(expr AS ?v)` or bare expr.
    Expr(Expr, Option<String>),
}

#[derive(Debug, Clone, PartialEq)]
pub struct OrderCondition {
    pub expr: Expr,
    pub descending: bool,
}

/// A group graph pattern: an ordered list of elements. Filters apply to
/// the whole group (scoping handled by the algebra translation).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GroupPattern {
    pub elements: Vec<GroupElement>,
}

#[derive(Debug, Clone, PartialEq)]
pub enum GroupElement {
    Triples(Vec<TriplePattern>),
    Optional(GroupPattern),
    Union(Vec<GroupPattern>),
    Minus(GroupPattern),
    Filter(Expr),
    Bind(Expr, String),
    Values(ValuesBlock),
    /// Nested `{ ... }` group.
    Group(GroupPattern),
}

#[derive(Debug, Clone, PartialEq)]
pub struct ValuesBlock {
    pub vars: Vec<String>,
    /// One row per solution; `None` is UNDEF.
    pub rows: Vec<Vec<Option<TermPattern>>>,
}

/// One triple pattern; the predicate may be a property path.
#[derive(Debug, Clone, PartialEq)]
pub struct TriplePattern {
    pub subject: TermPattern,
    pub path: Path,
    pub object: TermPattern,
}

/// Subject/object position: variable or ground term.
#[derive(Debug, Clone, PartialEq)]
pub enum TermPattern {
    Var(String),
    Iri(String),
    /// Blank node label — scoped to the query, acts as a non-projected
    /// variable.
    Blank(String),
    Literal(LiteralPattern),
}

#[derive(Debug, Clone, PartialEq)]
pub struct LiteralPattern {
    pub lexical: String,
    pub language: Option<String>,
    /// Datatype IRI; `None` means plain (xsd:string).
    pub datatype: Option<String>,
}

/// Property path expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Path {
    /// Plain predicate: an IRI.
    Iri(String),
    /// A variable in predicate position (not a path, but shares the slot).
    Var(String),
    Inverse(Box<Path>),
    Sequence(Box<Path>, Box<Path>),
    Alternative(Box<Path>, Box<Path>),
    ZeroOrMore(Box<Path>),
    OneOrMore(Box<Path>),
    ZeroOrOne(Box<Path>),
    /// `!(iri1 | iri2 | ^iri3 ...)` — negated property set. The bool marks
    /// inverted members.
    Negated(Vec<(String, bool)>),
}

impl Path {
    /// True when the path is a plain predicate (IRI or variable).
    pub fn is_trivial(&self) -> bool {
        matches!(self, Path::Iri(_) | Path::Var(_))
    }
}

/// Expressions (FILTER / BIND / SELECT expressions / HAVING).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Var(String),
    Iri(String),
    Literal(LiteralPattern),
    Or(Box<Expr>, Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Not(Box<Expr>),
    Compare(CompareOp, Box<Expr>, Box<Expr>),
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    UnaryMinus(Box<Expr>),
    In(Box<Expr>, Vec<Expr>, /*negated=*/ bool),
    Call(Builtin, Vec<Expr>),
    Exists(GroupPattern, /*negated=*/ bool),
    Aggregate(Box<AggregateExpr>),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompareOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
}

#[derive(Debug, Clone, PartialEq)]
pub struct AggregateExpr {
    pub kind: AggregateKind,
    pub distinct: bool,
    /// `None` only for `COUNT(*)`.
    pub expr: Option<Expr>,
    /// GROUP_CONCAT separator.
    pub separator: Option<String>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggregateKind {
    Count,
    Sum,
    Avg,
    Min,
    Max,
    Sample,
    GroupConcat,
}

/// Builtin functions. `Builtin::from_name` recognizes them
/// case-insensitively.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Builtin {
    Bound,
    Str,
    Lang,
    LangMatches,
    Datatype,
    Iri,
    BNode,
    StrLen,
    UCase,
    LCase,
    Contains,
    StrStarts,
    StrEnds,
    StrBefore,
    StrAfter,
    SubStr,
    Replace,
    Concat,
    Regex,
    Abs,
    Ceil,
    Floor,
    Round,
    Coalesce,
    If,
    SameTerm,
    IsIri,
    IsBlank,
    IsLiteral,
    IsNumeric,
}

impl Builtin {
    pub fn from_name(name: &str) -> Option<Builtin> {
        Some(match name.to_ascii_uppercase().as_str() {
            "BOUND" => Builtin::Bound,
            "STR" => Builtin::Str,
            "LANG" => Builtin::Lang,
            "LANGMATCHES" => Builtin::LangMatches,
            "DATATYPE" => Builtin::Datatype,
            "IRI" | "URI" => Builtin::Iri,
            "BNODE" => Builtin::BNode,
            "STRLEN" => Builtin::StrLen,
            "UCASE" => Builtin::UCase,
            "LCASE" => Builtin::LCase,
            "CONTAINS" => Builtin::Contains,
            "STRSTARTS" => Builtin::StrStarts,
            "STRENDS" => Builtin::StrEnds,
            "STRBEFORE" => Builtin::StrBefore,
            "STRAFTER" => Builtin::StrAfter,
            "SUBSTR" => Builtin::SubStr,
            "REPLACE" => Builtin::Replace,
            "CONCAT" => Builtin::Concat,
            "REGEX" => Builtin::Regex,
            "ABS" => Builtin::Abs,
            "CEIL" => Builtin::Ceil,
            "FLOOR" => Builtin::Floor,
            "ROUND" => Builtin::Round,
            "COALESCE" => Builtin::Coalesce,
            "IF" => Builtin::If,
            "SAMETERM" => Builtin::SameTerm,
            "ISIRI" | "ISURI" => Builtin::IsIri,
            "ISBLANK" => Builtin::IsBlank,
            "ISLITERAL" => Builtin::IsLiteral,
            "ISNUMERIC" => Builtin::IsNumeric,
            _ => return None,
        })
    }
}

impl AggregateKind {
    pub fn from_name(name: &str) -> Option<AggregateKind> {
        Some(match name.to_ascii_uppercase().as_str() {
            "COUNT" => AggregateKind::Count,
            "SUM" => AggregateKind::Sum,
            "AVG" => AggregateKind::Avg,
            "MIN" => AggregateKind::Min,
            "MAX" => AggregateKind::Max,
            "SAMPLE" => AggregateKind::Sample,
            "GROUP_CONCAT" => AggregateKind::GroupConcat,
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_lookup_is_case_insensitive() {
        assert_eq!(Builtin::from_name("bound"), Some(Builtin::Bound));
        assert_eq!(Builtin::from_name("Regex"), Some(Builtin::Regex));
        assert_eq!(Builtin::from_name("URI"), Some(Builtin::Iri));
        assert_eq!(Builtin::from_name("nope"), None);
    }

    #[test]
    fn aggregate_lookup() {
        assert_eq!(
            AggregateKind::from_name("count"),
            Some(AggregateKind::Count)
        );
        assert_eq!(
            AggregateKind::from_name("GROUP_CONCAT"),
            Some(AggregateKind::GroupConcat)
        );
        assert_eq!(AggregateKind::from_name("MEDIAN"), None);
    }

    #[test]
    fn trivial_paths() {
        assert!(Path::Iri("http://e/p".into()).is_trivial());
        assert!(Path::Var("p".into()).is_trivial());
        assert!(!Path::OneOrMore(Box::new(Path::Iri("http://e/p".into()))).is_trivial());
    }
}
