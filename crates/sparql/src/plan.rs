//! Cost-based query planning.
//!
//! [`plan_query`] compiles a parsed [`Query`] into an explicit [`Plan`]
//! before any row flows: per BGP it picks a join order by selectivity
//! estimates read from the graph's incrementally-maintained statistics
//! ([`feo_rdf::GraphStats`] via [`GraphView::predicate_stats`] /
//! [`GraphView::class_instance_count`]), records which hexastore index
//! the evaluator's dispatch will hit for each pattern, and marks steps
//! whose build side is large enough that a hash join beats per-row
//! B-tree range scans. The evaluator executes the plan verbatim instead
//! of re-deriving an order on every call; [`feo-core`'s plan cache]
//! reuses one plan across repeated questions on an unchanged snapshot.
//!
//! Estimates are deliberately simple — uniform-distribution formulas
//! over per-predicate triple / distinct-subject / distinct-object
//! counts, exact counts for `?x rdf:type <C>` — because join-order
//! quality needs only the relative magnitudes to be right. Ties keep
//! author order, so a plan is always deterministic for a given query
//! and snapshot.

use std::collections::HashSet;
use std::fmt::Write as _;

use feo_rdf::governor::Guard;
use feo_rdf::pool::Parallelism;
use feo_rdf::vocab::rdf;
use feo_rdf::GraphView;

use crate::ast::{
    GroupElement, GroupPattern, LiteralPattern, Path, Query, TermPattern, TriplePattern,
};
use crate::eval::{register_group_vars, register_modifier_vars, VarTable};

/// Join-order strategy for BGP evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Planner {
    /// Evaluate triple patterns in author order (the ablation baseline).
    Off,
    /// Greedy bound-position reordering, decided per call while rows
    /// flow — the pre-planner behavior.
    Greedy,
    /// Compile a [`Plan`] up front from graph statistics: estimated
    /// join order, index choice, and hash-join placement per BGP.
    #[default]
    CostBased,
}

impl Planner {
    /// Stable lowercase name used in plan renderings and CLI flags.
    pub fn name(&self) -> &'static str {
        match self {
            Planner::Off => "off",
            Planner::Greedy => "greedy",
            Planner::CostBased => "cost-based",
        }
    }
}

/// Physical join algorithm for one BGP step.
///
/// The planner picks per step from statistics and the orderings the
/// hexastore permutations provide; the choice never affects results —
/// every algorithm produces byte-identical row-ordered tables — only
/// constant factors. [`QueryOptions::force_join`] overrides the choice
/// at execution time (the differential test hook); join *order* is
/// decided independently, so forcing swaps operators on an identical
/// plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinAlgo {
    /// Per-input-row B-tree/run range scans (the small-input baseline).
    Nested,
    /// Build a hash table over the pattern's scan once, probe per row.
    Hash,
    /// Sort-merge: stream the scan already ordered on the join key and
    /// binary-search key groups — no hash table.
    Merge,
    /// Leapfrog-style multiway intersection of k sorted runs sharing
    /// one variable (star patterns), seeking through all runs at once.
    Leapfrog,
}

impl JoinAlgo {
    /// Stable lowercase name used in plan renderings and counters.
    pub fn name(&self) -> &'static str {
        match self {
            JoinAlgo::Nested => "nested",
            JoinAlgo::Hash => "hash",
            JoinAlgo::Merge => "merge",
            JoinAlgo::Leapfrog => "leapfrog",
        }
    }
}

/// The one options struct accepted by [`crate::query`] / [`crate::execute`].
///
/// Replaces the previous `ExecOptions` + `*_guarded` duals: the guard,
/// the planner choice, and EXPLAIN mode travel together.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryOptions<'a> {
    /// Execution governor: input-size cap on the query text, solution
    /// budget on join-row production, deadline / cancellation polling in
    /// hot loops. `None` runs unguarded.
    pub guard: Option<&'a Guard>,
    /// Join-order strategy.
    pub planner: Planner,
    /// When set, return the rendered plan as [`crate::QueryResult::Plan`]
    /// instead of executing — SQL `EXPLAIN` semantics.
    pub explain: bool,
    /// Worker pool for planner-marked joins (leaf scans and hash-join
    /// build/probe over large intermediaries). Whatever the setting, the
    /// solution multiset is identical — partitions merge in pinned input
    /// order — so this is a throughput knob, never a semantics knob.
    pub parallelism: Parallelism,
    /// When set, execute every join step with this algorithm instead of
    /// the planner's choice (leapfrog degrades per step to nested where
    /// no star group exists). Join order is unchanged, and every
    /// algorithm returns byte-identical tables, so this is a
    /// differential-testing and benchmarking hook, not a semantics knob.
    pub force_join: Option<JoinAlgo>,
}

impl<'a> QueryOptions<'a> {
    /// Options running under `guard` with the default planner.
    pub fn guarded(guard: &'a Guard) -> Self {
        QueryOptions {
            guard: Some(guard),
            ..QueryOptions::default()
        }
    }
}

/// Which access path the evaluator's pattern dispatch hits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexChoice {
    /// Subject-bound prefix scan (subject, or subject+object, known).
    Spo,
    /// Predicate-bound prefix scan (predicate, or predicate+object).
    Pos,
    /// Object-bound prefix scan with the predicate free.
    Osp,
    /// Full scan: nothing usefully bound.
    Full,
    /// Complex property path — closure evaluation, not an index scan.
    Path,
}

impl IndexChoice {
    fn name(&self) -> &'static str {
        match self {
            IndexChoice::Spo => "spo",
            IndexChoice::Pos => "pos",
            IndexChoice::Osp => "osp",
            IndexChoice::Full => "full",
            IndexChoice::Path => "path",
        }
    }
}

/// A compiled query plan, mirroring the query's group-pattern tree.
///
/// The evaluator walks plan and AST in lockstep; a structural mismatch
/// (a plan compiled from a different query) degrades to the greedy
/// strategy for the mismatched node instead of misevaluating.
#[derive(Debug, Clone, Default)]
pub struct Plan {
    pub root: GroupPlan,
}

/// Plan node for one group pattern: one entry per group element.
#[derive(Debug, Clone, Default)]
pub struct GroupPlan {
    pub elements: Vec<ElementPlan>,
}

/// Plan node for one group element.
#[derive(Debug, Clone)]
pub enum ElementPlan {
    /// A basic graph pattern with its join order.
    Bgp(BgpPlan),
    /// Nested `{ ... }` group.
    Group(GroupPlan),
    Optional(GroupPlan),
    Minus(GroupPlan),
    Union(Vec<GroupPlan>),
    /// FILTER / BIND / VALUES — no planning decisions to record.
    Leaf,
}

/// Execution order for one BGP.
#[derive(Debug, Clone, Default)]
pub struct BgpPlan {
    /// Steps in execution order; `pattern` indexes the author-order
    /// triple-pattern list.
    pub steps: Vec<PlanStep>,
}

/// One join step of a BGP.
#[derive(Debug, Clone)]
pub struct PlanStep {
    /// Index of the triple pattern in author order.
    pub pattern: usize,
    /// Estimated matching triples for this pattern at this point in the
    /// join (per input row).
    pub est_rows: f64,
    /// Access path the evaluator's dispatch will take.
    pub index: IndexChoice,
    /// Physical join algorithm the evaluator executes this step with.
    pub algo: JoinAlgo,
    /// Star-group id: `Some(g)` marks this step as one member of a
    /// fused leapfrog intersection; members of a group are consecutive
    /// steps sharing `g`, intersected in one multiway operator. Set iff
    /// `algo == JoinAlgo::Leapfrog`.
    pub star: Option<usize>,
    /// This step's estimated work is large enough that partitioning the
    /// input rows (and the hash build) across a worker pool pays for the
    /// fan-out. The evaluator additionally requires enough input rows at
    /// runtime ([`PARALLEL_MIN_INPUT`]) and a configured pool.
    pub parallel: bool,
}

/// Build side below this many triples: per-row range scans are cheap
/// enough that hashing only adds constant overhead.
pub(crate) const HASH_JOIN_BUILD_MIN: f64 = 64.0;

/// Fewer input rows than this at runtime: probe setup cannot amortize,
/// fall back to the nested-loop path.
pub(crate) const HASH_JOIN_MIN_INPUT: usize = 8;

/// Estimated per-row matches above which the planner marks a step
/// parallelizable: below this the per-row work is too small for thread
/// fan-out to beat the sequential loop.
pub(crate) const PARALLEL_EST_MIN: f64 = 256.0;

/// Fewer input rows than this at runtime: partitioning cannot amortize
/// worker startup, stay sequential even on a parallel-marked step.
pub(crate) const PARALLEL_MIN_INPUT: usize = 128;

/// Compiles `q` into a [`Plan`] using `view`'s statistics.
pub fn plan_query<G: GraphView>(view: &G, q: &Query) -> Plan {
    let mut vars = VarTable::default();
    register_group_vars(&q.where_pattern, &mut vars);
    register_modifier_vars(q, &mut vars);
    let mut bound: HashSet<usize> = HashSet::new();
    Plan {
        root: plan_group(view, &q.where_pattern, &vars, &mut bound),
    }
}

fn plan_group<G: GraphView>(
    view: &G,
    group: &GroupPattern,
    vars: &VarTable,
    bound: &mut HashSet<usize>,
) -> GroupPlan {
    let mut elements = Vec::with_capacity(group.elements.len());
    for el in &group.elements {
        let planned = match el {
            GroupElement::Triples(ts) => ElementPlan::Bgp(plan_bgp(view, ts, vars, bound)),
            GroupElement::Group(inner) => {
                // Bindings escape a nested group: plan with, and keep, the
                // shared bound set.
                ElementPlan::Group(plan_group(view, inner, vars, bound))
            }
            GroupElement::Optional(inner) => {
                // OPTIONAL may leave its variables unbound, so they do not
                // count as bound for later estimates.
                let mut inner_bound = bound.clone();
                ElementPlan::Optional(plan_group(view, inner, vars, &mut inner_bound))
            }
            GroupElement::Minus(inner) => {
                // MINUS evaluates against a fresh empty binding.
                let mut inner_bound = HashSet::new();
                ElementPlan::Minus(plan_group(view, inner, vars, &mut inner_bound))
            }
            GroupElement::Union(arms) => {
                // A variable is bound after the union only when every arm
                // binds it.
                let mut arm_plans = Vec::with_capacity(arms.len());
                let mut common: Option<HashSet<usize>> = None;
                for arm in arms {
                    let mut arm_bound = bound.clone();
                    arm_plans.push(plan_group(view, arm, vars, &mut arm_bound));
                    common = Some(match common {
                        None => arm_bound,
                        Some(c) => c.intersection(&arm_bound).copied().collect(),
                    });
                }
                if let Some(c) = common {
                    bound.extend(c);
                }
                ElementPlan::Union(arm_plans)
            }
            GroupElement::Bind(_, v) => {
                if let Some(slot) = vars.get(v) {
                    bound.insert(slot);
                }
                ElementPlan::Leaf
            }
            GroupElement::Values(vb) => {
                for v in &vb.vars {
                    if let Some(slot) = vars.get(v) {
                        bound.insert(slot);
                    }
                }
                ElementPlan::Leaf
            }
            GroupElement::Filter(_) => ElementPlan::Leaf,
        };
        elements.push(planned);
    }
    GroupPlan { elements }
}

fn plan_bgp<G: GraphView>(
    view: &G,
    patterns: &[TriplePattern],
    vars: &VarTable,
    bound: &mut HashSet<usize>,
) -> BgpPlan {
    let mut remaining: Vec<usize> = (0..patterns.len()).collect();
    let mut steps = Vec::with_capacity(patterns.len());
    let mut next_star = 0usize;
    while !remaining.is_empty() {
        // Minimum estimated cardinality wins; a strictly-smaller test
        // keeps the first minimum, so ties preserve author order.
        let mut best = 0;
        let mut best_est = f64::INFINITY;
        let mut best_index = IndexChoice::Full;
        for (i, &pi) in remaining.iter().enumerate() {
            let (est, index) = estimate(view, &patterns[pi], vars, bound);
            if est < best_est {
                best = i;
                best_est = est;
                best_index = index;
            }
        }
        let pi = remaining[best];

        // Star fusion: when the chosen pattern is a doubly-ground run
        // over a still-unbound variable and at least one sibling shares
        // that variable the same way, fuse the whole star into one
        // leapfrog group — k runs intersected with simultaneous seeks
        // instead of k-1 pairwise joins.
        if let Some(v) = star_slot(&patterns[pi], vars, bound) {
            let mut members: Vec<(f64, usize, IndexChoice)> = remaining
                .iter()
                .filter(|&&mi| star_slot(&patterns[mi], vars, bound) == Some(v))
                .map(|&mi| {
                    let (est, index) = estimate(view, &patterns[mi], vars, bound);
                    (est, mi, index)
                })
                .collect();
            if members.len() >= 2 {
                // Smallest run first: the anchor drives the seeks and
                // defines the emitted order. Ties keep author order.
                members.sort_by(|a, b| {
                    a.0.partial_cmp(&b.0)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.1.cmp(&b.1))
                });
                let gid = next_star;
                next_star += 1;
                for &(est, mi, index) in &members {
                    // Intersection cost is one pass over the runs; the
                    // runtime row gate keeps tiny inputs sequential.
                    steps.push(PlanStep {
                        pattern: mi,
                        est_rows: est,
                        index,
                        algo: JoinAlgo::Leapfrog,
                        star: Some(gid),
                        parallel: true,
                    });
                    for slot in pattern_var_slots(&patterns[mi], vars) {
                        bound.insert(slot);
                    }
                }
                remaining.retain(|mi| !members.iter().any(|&(_, m, _)| m == *mi));
                continue;
            }
        }

        remaining.remove(best);
        let tp = &patterns[pi];
        let algo = if merge_worthwhile(view, tp, vars, bound) {
            JoinAlgo::Merge
        } else if hash_join_worthwhile(view, tp, vars, bound) {
            JoinAlgo::Hash
        } else {
            JoinAlgo::Nested
        };
        // Hash/merge steps have O(1)/O(log n) probes, so parallelism
        // pays once the input side is wide (the runtime row gate); scan
        // steps need the per-row work itself to clear the threshold.
        let parallel = algo != JoinAlgo::Nested || best_est >= PARALLEL_EST_MIN;
        for slot in pattern_var_slots(tp, vars) {
            bound.insert(slot);
        }
        steps.push(PlanStep {
            pattern: pi,
            est_rows: best_est,
            index: best_index,
            algo,
            star: None,
            parallel,
        });
    }
    BgpPlan { steps }
}

/// The still-unbound variable slot of a star-eligible pattern: an IRI
/// predicate with exactly one variable endpoint whose other endpoint is
/// a ground term — the shape whose match set is one sorted dictionary
/// run, seekable for leapfrog intersection.
fn star_slot(tp: &TriplePattern, vars: &VarTable, bound: &HashSet<usize>) -> Option<usize> {
    if !matches!(&tp.path, Path::Iri(_)) {
        return None;
    }
    let slot_of = |t: &TermPattern| match t {
        TermPattern::Var(v) => vars.get(v),
        TermPattern::Blank(l) => vars.get(&format!("_:{l}")),
        _ => None,
    };
    let ground = |t: &TermPattern| matches!(t, TermPattern::Iri(_) | TermPattern::Literal(_));
    match (slot_of(&tp.subject), slot_of(&tp.object)) {
        (Some(s), None) if ground(&tp.object) && !bound.contains(&s) => Some(s),
        (None, Some(o)) if ground(&tp.subject) && !bound.contains(&o) => Some(o),
        _ => None,
    }
}

/// Variable/blank slots this pattern can bind.
fn pattern_var_slots(tp: &TriplePattern, vars: &VarTable) -> Vec<usize> {
    let mut out = Vec::new();
    for t in [&tp.subject, &tp.object] {
        match t {
            TermPattern::Var(v) => out.extend(vars.get(v)),
            TermPattern::Blank(l) => out.extend(vars.get(&format!("_:{l}"))),
            _ => {}
        }
    }
    if let Path::Var(v) = &tp.path {
        out.extend(vars.get(v));
    }
    out
}

/// Ground terms count as bound; variables and blank labels only when
/// their slot is in the bound set.
fn term_bound(tp: &TermPattern, vars: &VarTable, bound: &HashSet<usize>) -> bool {
    match tp {
        TermPattern::Var(v) => vars.get(v).is_some_and(|s| bound.contains(&s)),
        TermPattern::Blank(l) => vars
            .get(&format!("_:{l}"))
            .is_some_and(|s| bound.contains(&s)),
        _ => true,
    }
}

/// Estimated matching triples for `tp` given what is bound, and the
/// access path the evaluator's dispatch will take for that boundness.
fn estimate<G: GraphView>(
    view: &G,
    tp: &TriplePattern,
    vars: &VarTable,
    bound: &HashSet<usize>,
) -> (f64, IndexChoice) {
    let s_bound = term_bound(&tp.subject, vars, bound);
    let o_bound = term_bound(&tp.object, vars, bound);
    let total = view.len() as f64;
    match &tp.path {
        Path::Iri(p) => {
            let Some(pid) = view.lookup_iri(p) else {
                // Unknown predicate: matches nothing, run it first.
                return (0.0, IndexChoice::Pos);
            };
            let ps = view.predicate_stats(pid);
            let triples = ps.triples as f64;
            let ds = ps.distinct_subjects.max(1) as f64;
            let dout = ps.distinct_objects.max(1) as f64;
            match (s_bound, o_bound) {
                (true, true) => ((triples / (ds * dout)).min(1.0), IndexChoice::Spo),
                (true, false) => (triples / ds, IndexChoice::Spo),
                (false, true) => {
                    // `?x rdf:type <C>` has an exact maintained count.
                    if view.lookup_iri(rdf::TYPE) == Some(pid) {
                        if let TermPattern::Iri(class) = &tp.object {
                            let n = match view.lookup_iri(class) {
                                Some(cid) => view.class_instance_count(cid) as f64,
                                None => 0.0,
                            };
                            return (n, IndexChoice::Pos);
                        }
                    }
                    (triples / dout, IndexChoice::Pos)
                }
                (false, false) => (triples, IndexChoice::Pos),
            }
        }
        Path::Var(v) => {
            // Unknown predicate distribution: decay the total per bound
            // position rather than pretending to exact counts.
            let p_bound = vars.get(v).is_some_and(|s| bound.contains(&s));
            let mut est = total;
            for b in [s_bound, p_bound, o_bound] {
                if b {
                    est = est.sqrt();
                }
            }
            let index = if s_bound {
                IndexChoice::Spo
            } else if o_bound {
                IndexChoice::Osp
            } else {
                IndexChoice::Full
            };
            (est.max(1.0), index)
        }
        _ => {
            // Complex paths run closure loops; without endpoint anchors
            // they can touch every node, so order them last.
            let est = if s_bound || o_bound {
                total
            } else {
                total * 4.0
            };
            (est + 1.0, IndexChoice::Path)
        }
    }
}

/// A hash join pays off when the pattern joins on at least one
/// already-bound variable endpoint and the build-side scan (predicate
/// plus ground endpoint constants) is big enough to amortize the table.
fn hash_join_worthwhile<G: GraphView>(
    view: &G,
    tp: &TriplePattern,
    vars: &VarTable,
    bound: &HashSet<usize>,
) -> bool {
    let Path::Iri(p) = &tp.path else {
        return false;
    };
    let is_var = |t: &TermPattern| matches!(t, TermPattern::Var(_) | TermPattern::Blank(_));
    let s_join = is_var(&tp.subject) && term_bound(&tp.subject, vars, bound);
    let o_join = is_var(&tp.object) && term_bound(&tp.object, vars, bound);
    if !s_join && !o_join {
        return false;
    }
    let Some(pid) = view.lookup_iri(p) else {
        return false;
    };
    let ps = view.predicate_stats(pid);
    let triples = ps.triples as f64;
    // Ground (non-variable) endpoints shrink the build scan.
    let scan = match (is_var(&tp.subject), is_var(&tp.object)) {
        (true, true) => triples,
        (false, true) => triples / ps.distinct_subjects.max(1) as f64,
        (true, false) => triples / ps.distinct_objects.max(1) as f64,
        (false, false) => 1.0,
    };
    scan >= HASH_JOIN_BUILD_MIN
}

/// A sort-merge join applies when a hash join would (a large enough
/// scan joining on a bound variable) *and* the scan the evaluator's
/// dispatch produces is already sorted on a joined column, so no table
/// needs building:
///
/// - subject ground → SPO prefix scan, sorted by object;
/// - object ground → POS prefix scan, sorted by subject;
/// - both free → POS predicate scan, sorted by (object, subject).
///
/// The one bound-join shape with no usable ordering is a subject-only
/// join with the object free (sorted by the wrong column) — that stays
/// a hash join.
fn merge_worthwhile<G: GraphView>(
    view: &G,
    tp: &TriplePattern,
    vars: &VarTable,
    bound: &HashSet<usize>,
) -> bool {
    let Path::Iri(p) = &tp.path else {
        return false;
    };
    let is_var = |t: &TermPattern| matches!(t, TermPattern::Var(_) | TermPattern::Blank(_));
    let s_join = is_var(&tp.subject) && term_bound(&tp.subject, vars, bound);
    let o_join = is_var(&tp.object) && term_bound(&tp.object, vars, bound);
    if !s_join && !o_join {
        return false;
    }
    let Some(pid) = view.lookup_iri(p) else {
        return false;
    };
    let ps = view.predicate_stats(pid);
    let triples = ps.triples as f64;
    let scan = match (is_var(&tp.subject), is_var(&tp.object)) {
        (true, true) => triples,
        (false, true) => triples / ps.distinct_subjects.max(1) as f64,
        (true, false) => triples / ps.distinct_objects.max(1) as f64,
        (false, false) => 1.0,
    };
    if scan < HASH_JOIN_BUILD_MIN {
        return false;
    }
    // The sorted key column must be one the join binds.
    match (is_var(&tp.subject), is_var(&tp.object)) {
        (false, true) => o_join,
        (true, false) => s_join,
        (true, true) => o_join,
        (false, false) => false,
    }
}

// ---- rendering -----------------------------------------------------------

impl Plan {
    /// Human-readable plan: the group tree with each BGP's join order,
    /// index choice, estimate, and hash-join placement. `q` must be the
    /// query this plan was compiled from.
    pub fn render(&self, q: &Query, planner: Planner) -> String {
        let mut out = format!("plan planner={}\n", planner.name());
        render_group(&mut out, &q.where_pattern, &self.root, 0);
        out
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn render_group(out: &mut String, group: &GroupPattern, plan: &GroupPlan, depth: usize) {
    for (i, el) in group.elements.iter().enumerate() {
        let sub = plan.elements.get(i);
        match (el, sub) {
            (GroupElement::Triples(ts), Some(ElementPlan::Bgp(bp))) => {
                indent(out, depth);
                out.push_str("bgp\n");
                for (order, step) in bp.steps.iter().enumerate() {
                    indent(out, depth + 1);
                    let pattern = ts
                        .get(step.pattern)
                        .map(fmt_pattern)
                        .unwrap_or_else(|| "<pattern out of range>".to_string());
                    let join = match (step.algo, step.star) {
                        (JoinAlgo::Nested, _) => String::new(),
                        (JoinAlgo::Leapfrog, Some(g)) => format!(" join=leapfrog star={g}"),
                        (algo, _) => format!(" join={}", algo.name()),
                    };
                    let par = if step.parallel { " par" } else { "" };
                    let _ = writeln!(
                        out,
                        "{}. {}  [idx={} est={:.1}{}{}]",
                        order + 1,
                        pattern,
                        step.index.name(),
                        step.est_rows,
                        join,
                        par
                    );
                }
            }
            (GroupElement::Group(g), Some(ElementPlan::Group(gp))) => {
                indent(out, depth);
                out.push_str("group\n");
                render_group(out, g, gp, depth + 1);
            }
            (GroupElement::Optional(g), Some(ElementPlan::Optional(gp))) => {
                indent(out, depth);
                out.push_str("optional\n");
                render_group(out, g, gp, depth + 1);
            }
            (GroupElement::Minus(g), Some(ElementPlan::Minus(gp))) => {
                indent(out, depth);
                out.push_str("minus\n");
                render_group(out, g, gp, depth + 1);
            }
            (GroupElement::Union(arms), Some(ElementPlan::Union(arm_plans))) => {
                indent(out, depth);
                out.push_str("union\n");
                for (arm, arm_plan) in arms.iter().zip(arm_plans.iter()) {
                    indent(out, depth + 1);
                    out.push_str("arm\n");
                    render_group(out, arm, arm_plan, depth + 2);
                }
            }
            (GroupElement::Filter(_), _) => {
                indent(out, depth);
                out.push_str("filter\n");
            }
            (GroupElement::Bind(_, v), _) => {
                indent(out, depth);
                let _ = writeln!(out, "bind ?{v}");
            }
            (GroupElement::Values(vb), _) => {
                indent(out, depth);
                let _ = writeln!(out, "values ({} rows)", vb.rows.len());
            }
            (_, _) => {
                indent(out, depth);
                out.push_str("<plan/query shape mismatch>\n");
            }
        }
    }
}

fn fmt_pattern(tp: &TriplePattern) -> String {
    format!(
        "{} {} {}",
        fmt_term(&tp.subject),
        fmt_path(&tp.path),
        fmt_term(&tp.object)
    )
}

fn fmt_term(tp: &TermPattern) -> String {
    match tp {
        TermPattern::Var(v) => format!("?{v}"),
        TermPattern::Blank(l) => format!("_:{l}"),
        TermPattern::Iri(i) => format!("<{i}>"),
        TermPattern::Literal(l) => fmt_literal(l),
    }
}

fn fmt_literal(l: &LiteralPattern) -> String {
    match (&l.language, &l.datatype) {
        (Some(lang), _) => format!("{:?}@{lang}", l.lexical),
        (None, Some(dt)) => format!("{:?}^^<{dt}>", l.lexical),
        (None, None) => format!("{:?}", l.lexical),
    }
}

fn fmt_path(p: &Path) -> String {
    match p {
        Path::Iri(i) => format!("<{i}>"),
        Path::Var(v) => format!("?{v}"),
        Path::Inverse(inner) => format!("^({})", fmt_path(inner)),
        Path::Sequence(a, b) => format!("({}/{})", fmt_path(a), fmt_path(b)),
        Path::Alternative(a, b) => format!("({}|{})", fmt_path(a), fmt_path(b)),
        Path::ZeroOrMore(inner) => format!("({})*", fmt_path(inner)),
        Path::OneOrMore(inner) => format!("({})+", fmt_path(inner)),
        Path::ZeroOrOne(inner) => format!("({})?", fmt_path(inner)),
        Path::Negated(members) => {
            let parts: Vec<String> = members
                .iter()
                .map(|(iri, inv)| {
                    if *inv {
                        format!("^<{iri}>")
                    } else {
                        format!("<{iri}>")
                    }
                })
                .collect();
            format!("!({})", parts.join("|"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use feo_rdf::Graph;

    fn sample_graph() -> Graph {
        let mut g = Graph::new();
        // 1 selective predicate, 1 broad predicate, rdf:type triples.
        for i in 0..20 {
            g.insert_iris(
                &format!("http://e/r{i}"),
                "http://e/broad",
                &format!("http://e/v{}", i % 10),
            );
        }
        g.insert_iris("http://e/r0", "http://e/narrow", "http://e/only");
        for i in 0..5 {
            g.insert_iris(&format!("http://e/r{i}"), rdf::TYPE, "http://e/SmallClass");
        }
        g
    }

    fn plan_for(g: &Graph, text: &str) -> (Query, Plan) {
        let q = parse_query(text).expect("test query parses");
        let plan = plan_query(&g, &q);
        (q, plan)
    }

    #[test]
    fn selective_pattern_ordered_first() {
        let g = sample_graph();
        let (_, plan) = plan_for(
            &g,
            "SELECT * WHERE { ?r <http://e/broad> ?v . ?r <http://e/narrow> ?o }",
        );
        let ElementPlan::Bgp(bp) = &plan.root.elements[0] else {
            panic!("expected BGP plan");
        };
        // narrow (1 triple) runs before broad (20 triples).
        assert_eq!(bp.steps[0].pattern, 1);
        assert_eq!(bp.steps[1].pattern, 0);
        // After ?r binds, broad is estimated per-subject, not total.
        assert!(bp.steps[1].est_rows < 20.0);
    }

    #[test]
    fn rdf_type_uses_exact_class_count() {
        let g = sample_graph();
        let (_, plan) = plan_for(
            &g,
            "SELECT * WHERE { ?r <http://e/broad> ?v . \
             ?r a <http://e/SmallClass> }",
        );
        let ElementPlan::Bgp(bp) = &plan.root.elements[0] else {
            panic!("expected BGP plan");
        };
        assert_eq!(bp.steps[0].pattern, 1, "class pattern first");
        assert_eq!(bp.steps[0].est_rows, 5.0, "exact instance count");
        assert_eq!(bp.steps[0].index, IndexChoice::Pos);
    }

    #[test]
    fn ties_keep_author_order() {
        let g = sample_graph();
        let (_, plan) = plan_for(
            &g,
            "SELECT * WHERE { ?a <http://e/broad> ?b . ?c <http://e/broad> ?d }",
        );
        let ElementPlan::Bgp(bp) = &plan.root.elements[0] else {
            panic!("expected BGP plan");
        };
        assert_eq!(bp.steps[0].pattern, 0);
        assert_eq!(bp.steps[1].pattern, 1);
    }

    #[test]
    fn unknown_predicate_runs_first() {
        let g = sample_graph();
        let (_, plan) = plan_for(
            &g,
            "SELECT * WHERE { ?r <http://e/broad> ?v . ?r <http://e/absent> ?x }",
        );
        let ElementPlan::Bgp(bp) = &plan.root.elements[0] else {
            panic!("expected BGP plan");
        };
        assert_eq!(bp.steps[0].pattern, 1);
        assert_eq!(bp.steps[0].est_rows, 0.0);
    }

    #[test]
    fn complex_path_ordered_last() {
        let g = sample_graph();
        let (_, plan) = plan_for(
            &g,
            "SELECT * WHERE { ?a <http://e/broad>+ ?b . ?c <http://e/narrow> ?d }",
        );
        let ElementPlan::Bgp(bp) = &plan.root.elements[0] else {
            panic!("expected BGP plan");
        };
        assert_eq!(bp.steps[0].pattern, 1);
        assert_eq!(bp.steps[1].index, IndexChoice::Path);
    }

    #[test]
    fn hash_join_marked_on_large_bound_scan() {
        let mut g = Graph::new();
        for i in 0..200 {
            g.insert_iris(
                &format!("http://e/s{i}"),
                "http://e/link",
                &format!("http://e/t{}", i % 50),
            );
            g.insert_iris(&format!("http://e/s{i}"), "http://e/tag", "http://e/x");
        }
        let (_, plan) = plan_for(
            &g,
            "SELECT * WHERE { ?s <http://e/tag> <http://e/x> . ?s <http://e/link> ?t }",
        );
        let ElementPlan::Bgp(bp) = &plan.root.elements[0] else {
            panic!("expected BGP plan");
        };
        // Second step joins ?s against a 200-triple scan sorted by the
        // wrong column (object): hash join, not merge.
        let second = &bp.steps[1];
        assert_eq!(second.pattern, 1);
        assert_eq!(
            second.algo,
            JoinAlgo::Hash,
            "large subject-join over an object-sorted scan hashes: {plan:?}"
        );
        // First step has no bound variable yet: nested scan.
        assert_eq!(bp.steps[0].algo, JoinAlgo::Nested);
    }

    #[test]
    fn object_join_over_large_scan_merges() {
        let mut g = Graph::new();
        for i in 0..200 {
            g.insert_iris(
                &format!("http://e/s{i}"),
                "http://e/link",
                &format!("http://e/t{}", i % 50),
            );
        }
        for i in 0..40 {
            g.insert_iris(&format!("http://e/t{i}"), "http://e/tag", "http://e/x");
        }
        // ?t binds first (tag scan), then link joins on its object —
        // the POS scan is sorted by object, so the planner merges.
        let (_, plan) = plan_for(
            &g,
            "SELECT * WHERE { ?t <http://e/tag> <http://e/x> . ?s <http://e/link> ?t }",
        );
        let ElementPlan::Bgp(bp) = &plan.root.elements[0] else {
            panic!("expected BGP plan");
        };
        let second = &bp.steps[1];
        assert_eq!(second.pattern, 1);
        assert_eq!(second.algo, JoinAlgo::Merge, "{plan:?}");
        assert!(second.star.is_none());
    }

    #[test]
    fn star_patterns_fuse_into_leapfrog_group() {
        let mut g = Graph::new();
        for i in 0..100 {
            g.insert_iris(&format!("http://e/r{i}"), "http://e/p1", "http://e/a");
        }
        for i in 0..80 {
            g.insert_iris(&format!("http://e/r{i}"), "http://e/p2", "http://e/b");
        }
        for i in 0..60 {
            g.insert_iris(&format!("http://e/r{i}"), "http://e/p3", "http://e/c");
        }
        let (q, plan) = plan_for(
            &g,
            "SELECT * WHERE { ?r <http://e/p1> <http://e/a> . \
             ?r <http://e/p2> <http://e/b> . ?r <http://e/p3> <http://e/c> }",
        );
        let ElementPlan::Bgp(bp) = &plan.root.elements[0] else {
            panic!("expected BGP plan");
        };
        assert_eq!(bp.steps.len(), 3);
        for step in &bp.steps {
            assert_eq!(step.algo, JoinAlgo::Leapfrog, "{plan:?}");
            assert_eq!(step.star, Some(0));
        }
        // Smallest run anchors the intersection.
        assert_eq!(bp.steps[0].pattern, 2);
        assert_eq!(bp.steps[1].pattern, 1);
        assert_eq!(bp.steps[2].pattern, 0);
        let text = plan.render(&q, Planner::CostBased);
        assert!(text.contains("join=leapfrog star=0"), "{text}");
    }

    #[test]
    fn bound_star_variable_disables_fusion() {
        let mut g = Graph::new();
        for i in 0..100 {
            g.insert_iris(&format!("http://e/r{i}"), "http://e/p1", "http://e/a");
            g.insert_iris(&format!("http://e/r{i}"), "http://e/p2", "http://e/b");
        }
        for i in 0..100 {
            g.insert_iris(&format!("http://e/q{i}"), "http://e/link", "http://e/r0");
        }
        // ?r is bound by the first (selective) pattern before the star
        // members are reached: no fusion, they join one at a time.
        let (_, plan) = plan_for(
            &g,
            "SELECT * WHERE { ?q <http://e/link> ?r . \
             ?r <http://e/p1> <http://e/a> . ?r <http://e/p2> <http://e/b> }",
        );
        let ElementPlan::Bgp(bp) = &plan.root.elements[0] else {
            panic!("expected BGP plan");
        };
        // However ordered, no step may carry a star id once ?r binds
        // outside the group... unless fusion fired first. Either all
        // members fused before the link pattern ran, or none did.
        let starred = bp.steps.iter().filter(|s| s.star.is_some()).count();
        assert!(starred == 0 || starred == 2, "{plan:?}");
    }

    #[test]
    fn render_lists_steps_in_execution_order() {
        let g = sample_graph();
        let (q, plan) = plan_for(
            &g,
            "SELECT * WHERE { ?r <http://e/broad> ?v . ?r <http://e/narrow> ?o . \
             FILTER (?v != ?o) }",
        );
        let text = plan.render(&q, Planner::CostBased);
        assert!(text.starts_with("plan planner=cost-based"), "{text}");
        let narrow = text.find("narrow").expect("narrow rendered");
        let broad = text.find("broad").expect("broad rendered");
        assert!(narrow < broad, "narrow first:\n{text}");
        assert!(text.contains("filter"), "{text}");
        assert!(text.contains("idx="), "{text}");
    }

    #[test]
    fn plan_mirrors_group_tree() {
        let g = sample_graph();
        let (_, plan) = plan_for(
            &g,
            "SELECT * WHERE { ?r <http://e/broad> ?v \
             OPTIONAL { ?r <http://e/narrow> ?o } \
             { ?x <http://e/broad> ?y } \
             MINUS { ?r a <http://e/SmallClass> } }",
        );
        assert_eq!(plan.root.elements.len(), 4);
        assert!(matches!(plan.root.elements[0], ElementPlan::Bgp(_)));
        assert!(matches!(plan.root.elements[1], ElementPlan::Optional(_)));
        assert!(matches!(plan.root.elements[2], ElementPlan::Group(_)));
        assert!(matches!(plan.root.elements[3], ElementPlan::Minus(_)));
    }
}
