//! A small backtracking regular-expression engine for the SPARQL `REGEX`
//! and `REPLACE` builtins.
//!
//! Supported syntax: literals, `.`, `*`, `+`, `?`, `|`, grouping `(...)`,
//! character classes `[a-z0-9_]` with negation `[^...]` and ranges,
//! anchors `^` / `$`, escapes (`\d \w \s \D \W \S` and escaped
//! metacharacters), and the `i` (case-insensitive) flag. This covers every
//! pattern the paper's pipeline and the test corpus use; exotic features
//! (backreferences, lookaround, counted repetition) are rejected with an
//! error rather than mis-matched.

use std::fmt;

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegexError(pub String);

impl fmt::Display for RegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid regex: {}", self.0)
    }
}

impl std::error::Error for RegexError {}

/// A compiled pattern.
#[derive(Debug, Clone)]
pub struct Regex {
    prog: Node,
    case_insensitive: bool,
    anchored_start: bool,
}

#[derive(Debug, Clone)]
enum Node {
    /// Sequence of nodes.
    Seq(Vec<Node>),
    /// Alternation.
    Alt(Vec<Node>),
    /// Single char matcher.
    Char(char),
    /// Any char (`.`).
    Any,
    /// Character class.
    Class {
        negated: bool,
        items: Vec<ClassItem>,
    },
    /// Repetition of inner node: min, max (None = unbounded).
    Repeat {
        node: Box<Node>,
        min: u32,
        max: Option<u32>,
    },
    /// End anchor `$`.
    End,
}

#[derive(Debug, Clone)]
enum ClassItem {
    Char(char),
    Range(char, char),
    Digit,
    NonDigit,
    Word,
    NonWord,
    Space,
    NonSpace,
}

impl Regex {
    /// Compiles `pattern` with SPARQL-style `flags` (only `i` is
    /// meaningful; other known-but-unsupported flags error).
    pub fn new(pattern: &str, flags: &str) -> Result<Regex, RegexError> {
        let mut case_insensitive = false;
        for f in flags.chars() {
            match f {
                'i' => case_insensitive = true,
                's' => {} // `.` already matches everything except nothing
                other => {
                    return Err(RegexError(format!("unsupported flag '{other}'")));
                }
            }
        }
        let chars: Vec<char> = pattern.chars().collect();
        let mut p = RParser { chars, pos: 0 };
        let (node, anchored_start) = p.parse_top()?;
        if p.pos != p.chars.len() {
            return Err(RegexError(format!(
                "unexpected '{}' at offset {}",
                p.chars[p.pos], p.pos
            )));
        }
        Ok(Regex {
            prog: node,
            case_insensitive,
            anchored_start,
        })
    }

    /// True when the pattern matches anywhere in `text` (or at the start /
    /// covering the end if anchored).
    pub fn is_match(&self, text: &str) -> bool {
        self.find(text).is_some()
    }

    /// Finds the first match, returning `(start, end)` char offsets.
    pub fn find(&self, text: &str) -> Option<(usize, usize)> {
        let chars: Vec<char> = if self.case_insensitive {
            text.chars().flat_map(|c| c.to_lowercase()).collect()
        } else {
            text.chars().collect()
        };
        let starts: Box<dyn Iterator<Item = usize>> = if self.anchored_start {
            Box::new(std::iter::once(0))
        } else {
            Box::new(0..=chars.len())
        };
        for start in starts {
            if start > chars.len() {
                break;
            }
            if let Some(end) = self.match_at(&chars, start) {
                return Some((start, end));
            }
        }
        None
    }

    /// Replaces every non-overlapping match with `replacement`
    /// (no capture-group substitution; `$0`-style references are literal).
    pub fn replace_all(&self, text: &str, replacement: &str) -> String {
        // Operate on the original text; for case-insensitive matching,
        // offsets in the lowercased text line up with the original only
        // when lowercasing is length-preserving, which holds for the char
        // vector representation used here.
        let chars: Vec<char> = text.chars().collect();
        let matchable: Vec<char> = if self.case_insensitive {
            chars
                .iter()
                .map(|c| c.to_lowercase().next().unwrap_or(*c))
                .collect()
        } else {
            chars.clone()
        };
        let mut out = String::new();
        let mut i = 0;
        while i <= matchable.len() {
            let hit = if self.anchored_start && i != 0 {
                None
            } else {
                self.match_at(&matchable, i)
            };
            match hit {
                Some(end) if end > i => {
                    out.push_str(replacement);
                    i = end;
                }
                Some(_) => {
                    // Empty match: emit one char and advance to avoid loops.
                    out.push_str(replacement);
                    if i < chars.len() {
                        out.push(chars[i]);
                    }
                    i += 1;
                }
                None => {
                    if i < chars.len() {
                        out.push(chars[i]);
                    }
                    i += 1;
                }
            }
            if self.anchored_start && i > 0 && !out.is_empty() {
                // Anchored pattern can only match once at the start.
                out.extend(chars.get(i..).unwrap_or(&[]));
                return out;
            }
        }
        out
    }

    fn match_at(&self, chars: &[char], start: usize) -> Option<usize> {
        match_node(&self.prog, chars, start, self.case_insensitive, &mut 0)
    }
}

/// Backtracking matcher: returns the end offset of a successful match of
/// `node` starting at `pos`. `budget` caps backtracking steps so
/// pathological patterns fail closed instead of hanging.
fn match_node(
    node: &Node,
    chars: &[char],
    pos: usize,
    ci: bool,
    budget: &mut u64,
) -> Option<usize> {
    *budget += 1;
    if *budget > 1_000_000 {
        return None;
    }
    match node {
        Node::Seq(nodes) => match_seq(nodes, chars, pos, ci, budget),
        Node::Alt(arms) => arms
            .iter()
            .find_map(|arm| match_node(arm, chars, pos, ci, budget)),
        Node::Char(c) => {
            let want = if ci {
                c.to_lowercase().next().unwrap_or(*c)
            } else {
                *c
            };
            if chars.get(pos) == Some(&want) {
                Some(pos + 1)
            } else {
                None
            }
        }
        Node::Any => {
            if pos < chars.len() {
                Some(pos + 1)
            } else {
                None
            }
        }
        Node::Class { negated, items } => {
            let c = *chars.get(pos)?;
            let mut hit = items.iter().any(|item| class_item_matches(item, c, ci));
            if *negated {
                hit = !hit;
            }
            if hit {
                Some(pos + 1)
            } else {
                None
            }
        }
        Node::Repeat { node, min, max } => {
            match_repeat(node, *min, *max, &[], chars, pos, ci, budget)
        }
        Node::End => {
            if pos == chars.len() {
                Some(pos)
            } else {
                None
            }
        }
    }
}

fn match_seq(
    nodes: &[Node],
    chars: &[char],
    pos: usize,
    ci: bool,
    budget: &mut u64,
) -> Option<usize> {
    let Some((head, rest)) = nodes.split_first() else {
        return Some(pos);
    };
    if let Node::Repeat { node, min, max } = head {
        return match_repeat(node, *min, *max, rest, chars, pos, ci, budget);
    }
    let next = match_node(head, chars, pos, ci, budget)?;
    match_seq(rest, chars, next, ci, budget)
}

/// Greedy repetition with backtracking into the continuation `rest`.
#[allow(clippy::too_many_arguments)]
fn match_repeat(
    inner: &Node,
    min: u32,
    max: Option<u32>,
    rest: &[Node],
    chars: &[char],
    pos: usize,
    ci: bool,
    budget: &mut u64,
) -> Option<usize> {
    // Collect all reachable end positions by repeated application.
    let mut ends = vec![pos];
    let mut cur = pos;
    let cap = max.unwrap_or(u32::MAX);
    while (ends.len() as u32 - 1) < cap {
        match match_node(inner, chars, cur, ci, budget) {
            Some(next) if next > cur => {
                ends.push(next);
                cur = next;
            }
            Some(_) => break, // zero-width inner match: stop expanding
            None => break,
        }
    }
    // Try longest first (greedy).
    for (count, &end) in ends.iter().enumerate().rev() {
        if (count as u32) < min {
            break;
        }
        if let Some(fin) = match_seq(rest, chars, end, ci, budget) {
            return Some(fin);
        }
    }
    None
}

fn class_item_matches(item: &ClassItem, c: char, ci: bool) -> bool {
    let eq = |a: char, b: char| {
        if ci {
            a.to_lowercase().eq(b.to_lowercase())
        } else {
            a == b
        }
    };
    match item {
        ClassItem::Char(x) => eq(*x, c),
        ClassItem::Range(lo, hi) => {
            if ci {
                let cl = c.to_lowercase().next().unwrap_or(c);
                let cu = c.to_uppercase().next().unwrap_or(c);
                (*lo..=*hi).contains(&cl) || (*lo..=*hi).contains(&cu) || (*lo..=*hi).contains(&c)
            } else {
                (*lo..=*hi).contains(&c)
            }
        }
        ClassItem::Digit => c.is_ascii_digit(),
        ClassItem::NonDigit => !c.is_ascii_digit(),
        ClassItem::Word => c.is_alphanumeric() || c == '_',
        ClassItem::NonWord => !(c.is_alphanumeric() || c == '_'),
        ClassItem::Space => c.is_whitespace(),
        ClassItem::NonSpace => !c.is_whitespace(),
    }
}

struct RParser {
    chars: Vec<char>,
    pos: usize,
}

impl RParser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn parse_top(&mut self) -> Result<(Node, bool), RegexError> {
        let anchored = if self.peek() == Some('^') {
            self.pos += 1;
            true
        } else {
            false
        };
        let node = self.parse_alt()?;
        Ok((node, anchored))
    }

    fn parse_alt(&mut self) -> Result<Node, RegexError> {
        let mut arms = vec![self.parse_seq()?];
        while self.peek() == Some('|') {
            self.pos += 1;
            arms.push(self.parse_seq()?);
        }
        if arms.len() == 1 {
            Ok(arms.pop().expect("one arm"))
        } else {
            Ok(Node::Alt(arms))
        }
    }

    fn parse_seq(&mut self) -> Result<Node, RegexError> {
        let mut items = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            items.push(self.parse_repeatable()?);
        }
        Ok(Node::Seq(items))
    }

    fn parse_repeatable(&mut self) -> Result<Node, RegexError> {
        let atom = self.parse_atom()?;
        let node = match self.peek() {
            Some('*') => {
                self.pos += 1;
                Node::Repeat {
                    node: Box::new(atom),
                    min: 0,
                    max: None,
                }
            }
            Some('+') => {
                self.pos += 1;
                Node::Repeat {
                    node: Box::new(atom),
                    min: 1,
                    max: None,
                }
            }
            Some('?') => {
                self.pos += 1;
                Node::Repeat {
                    node: Box::new(atom),
                    min: 0,
                    max: Some(1),
                }
            }
            Some('{') => {
                return Err(RegexError(
                    "counted repetition {m,n} is not supported".into(),
                ))
            }
            _ => atom,
        };
        Ok(node)
    }

    fn parse_atom(&mut self) -> Result<Node, RegexError> {
        match self.bump() {
            Some('(') => {
                // Non-capturing prefix (?: is tolerated.
                if self.peek() == Some('?') {
                    self.pos += 1;
                    if self.peek() == Some(':') {
                        self.pos += 1;
                    } else {
                        return Err(RegexError("lookaround is not supported".into()));
                    }
                }
                let inner = self.parse_alt()?;
                if self.bump() != Some(')') {
                    return Err(RegexError("unclosed group".into()));
                }
                Ok(inner)
            }
            Some('[') => self.parse_class(),
            Some('.') => Ok(Node::Any),
            Some('$') => Ok(Node::End),
            Some('\\') => self.parse_escape(),
            Some('*') | Some('+') | Some('?') => Err(RegexError(
                "repetition operator with nothing to repeat".into(),
            )),
            Some(c) => Ok(Node::Char(c)),
            None => Err(RegexError("unexpected end of pattern".into())),
        }
    }

    fn parse_escape(&mut self) -> Result<Node, RegexError> {
        let one = |items: Vec<ClassItem>| Node::Class {
            negated: false,
            items,
        };
        match self.bump() {
            Some('d') => Ok(one(vec![ClassItem::Digit])),
            Some('D') => Ok(one(vec![ClassItem::NonDigit])),
            Some('w') => Ok(one(vec![ClassItem::Word])),
            Some('W') => Ok(one(vec![ClassItem::NonWord])),
            Some('s') => Ok(one(vec![ClassItem::Space])),
            Some('S') => Ok(one(vec![ClassItem::NonSpace])),
            Some('n') => Ok(Node::Char('\n')),
            Some('t') => Ok(Node::Char('\t')),
            Some('r') => Ok(Node::Char('\r')),
            Some(c) if !c.is_alphanumeric() => Ok(Node::Char(c)),
            Some(c) => Err(RegexError(format!("unsupported escape '\\{c}'"))),
            None => Err(RegexError("trailing backslash".into())),
        }
    }

    fn parse_class(&mut self) -> Result<Node, RegexError> {
        let negated = if self.peek() == Some('^') {
            self.pos += 1;
            true
        } else {
            false
        };
        let mut items = Vec::new();
        loop {
            match self.bump() {
                Some(']') if !items.is_empty() => return Ok(Node::Class { negated, items }),
                Some(']') => {
                    // A ']' first in the class is a literal.
                    items.push(ClassItem::Char(']'));
                }
                Some('\\') => match self.bump() {
                    Some('d') => items.push(ClassItem::Digit),
                    Some('D') => items.push(ClassItem::NonDigit),
                    Some('w') => items.push(ClassItem::Word),
                    Some('W') => items.push(ClassItem::NonWord),
                    Some('s') => items.push(ClassItem::Space),
                    Some('S') => items.push(ClassItem::NonSpace),
                    Some('n') => items.push(ClassItem::Char('\n')),
                    Some('t') => items.push(ClassItem::Char('\t')),
                    Some(c) => items.push(ClassItem::Char(c)),
                    None => return Err(RegexError("unterminated class".into())),
                },
                Some(c) => {
                    if self.peek() == Some('-')
                        && self.chars.get(self.pos + 1).is_some_and(|&n| n != ']')
                    {
                        self.pos += 1; // '-'
                        let hi = self.bump().expect("checked above");
                        if hi < c {
                            return Err(RegexError(format!("invalid range {c}-{hi}")));
                        }
                        items.push(ClassItem::Range(c, hi));
                    } else {
                        items.push(ClassItem::Char(c));
                    }
                }
                None => return Err(RegexError("unterminated character class".into())),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pat: &str, text: &str) -> bool {
        Regex::new(pat, "").unwrap().is_match(text)
    }

    #[test]
    fn literals_and_any() {
        assert!(m("apple", "green apples"));
        assert!(!m("apple", "grape"));
        assert!(m("a.c", "abc"));
        assert!(!m("a.c", "ac"));
    }

    #[test]
    fn repetition() {
        assert!(m("ab*c", "ac"));
        assert!(m("ab*c", "abbbc"));
        assert!(m("ab+c", "abc"));
        assert!(!m("ab+c", "ac"));
        assert!(m("ab?c", "ac"));
        assert!(m("ab?c", "abc"));
        assert!(!m("ab?c", "abbc"));
    }

    #[test]
    fn alternation_and_groups() {
        assert!(m("cat|dog", "hotdog"));
        assert!(m("(ab)+", "ababab"));
        assert!(m("gr(a|e)y", "grey"));
        assert!(m("gr(?:a|e)y", "gray"));
    }

    #[test]
    fn anchors() {
        assert!(m("^http", "http://e"));
        assert!(!m("^http", "see http://e"));
        assert!(m("soup$", "squash soup"));
        assert!(!m("soup$", "soup kitchen"));
        assert!(m("^full$", "full"));
        assert!(!m("^full$", "fullness"));
    }

    #[test]
    fn classes() {
        assert!(m("[a-z]+", "hello"));
        assert!(m("[0-9][0-9]", "year 42"));
        assert!(m("[^aeiou]", "sky"));
        assert!(!m("^[^s]", "sky"));
        assert!(m(r"\d+", "route 66"));
        assert!(m(r"\w+@\w+", "a_b@example"));
        assert!(m(r"\s", "a b"));
        assert!(!m(r"\S", "   "));
    }

    #[test]
    fn case_insensitive_flag() {
        let r = Regex::new("autumn", "i").unwrap();
        assert!(r.is_match("AUTUMN leaves"));
        assert!(r.is_match("Autumn"));
        let r = Regex::new("^Cauliflower", "i").unwrap();
        assert!(r.is_match("cauliflower potato curry"));
    }

    #[test]
    fn find_offsets() {
        let r = Regex::new("b+", "").unwrap();
        assert_eq!(r.find("aabbbcc"), Some((2, 5)));
        assert_eq!(r.find("no match"), None);
    }

    #[test]
    fn replace_all() {
        let r = Regex::new("o", "").unwrap();
        assert_eq!(r.replace_all("food stop", "0"), "f00d st0p");
        let r = Regex::new("[0-9]+", "").unwrap();
        assert_eq!(r.replace_all("a1b22c333", "#"), "a#b#c#");
    }

    #[test]
    fn errors() {
        assert!(Regex::new("a{2,3}", "").is_err());
        assert!(Regex::new("(unclosed", "").is_err());
        assert!(Regex::new("[unclosed", "").is_err());
        assert!(Regex::new("*oops", "").is_err());
        assert!(Regex::new("ok", "x").is_err());
    }

    #[test]
    fn escaped_metacharacters() {
        assert!(m(r"3\.5", "3.5"));
        assert!(!m(r"3\.5", "365"));
        assert!(m(r"\(note\)", "(note)"));
    }

    #[test]
    fn pathological_pattern_fails_closed() {
        // (a+)+b against a long run of 'a' — budget cap prevents hanging.
        let r = Regex::new("(a+)+b", "").unwrap();
        let text = "a".repeat(40);
        assert!(!r.is_match(&text));
    }
}
