//! # feo-sparql
//!
//! A SPARQL 1.1 query engine over [`feo_rdf::Graph`] — the workspace's
//! substitute for the Jena/ARQ-style engine the paper used to evaluate
//! its competency questions (§IV–§V).
//!
//! Pipeline: [`lexer`] → [`parser`] → direct evaluation ([`eval`]) with
//! solution sets. Supported: SELECT / ASK / CONSTRUCT, BGPs with greedy
//! join reordering, OPTIONAL, UNION, MINUS, FILTER (incl. EXISTS /
//! NOT EXISTS), BIND, VALUES, property paths (`^ / | * + ?` and negated
//! sets), the builtin function library, GROUP BY with aggregates, HAVING,
//! ORDER BY, DISTINCT / REDUCED, LIMIT / OFFSET.
//!
//! ```
//! use feo_rdf::Graph;
//! use feo_rdf::turtle::parse_turtle_into;
//! use feo_sparql::query;
//!
//! let mut g = Graph::new();
//! parse_turtle_into(r#"
//!     @prefix feo: <https://purl.org/heals/feo#> .
//!     feo:Autumn a feo:SeasonCharacteristic .
//! "#, &mut g).unwrap();
//! let result = query(&g,
//!     "PREFIX feo: <https://purl.org/heals/feo#>
//!      SELECT ?c WHERE { ?c a feo:SeasonCharacteristic }").unwrap();
//! let table = result.expect_solutions();
//! assert!(table.contains_local("c", "Autumn"));
//! ```

pub mod ast;
pub mod error;
pub mod eval;
pub mod lexer;
pub mod parser;
pub mod regexlite;
pub mod results;
pub mod value;

pub use error::{Result, SparqlError};
pub use eval::{
    execute, execute_guarded, execute_with, query, query_guarded, query_with, ExecOptions,
};
pub use parser::parse_query;
pub use results::{QueryResult, SolutionTable};
