//! # feo-sparql
//!
//! A SPARQL 1.1 query engine over [`feo_rdf::Graph`] — the workspace's
//! substitute for the Jena/ARQ-style engine the paper used to evaluate
//! its competency questions (§IV–§V).
//!
//! Pipeline: [`lexer`] → [`parser`] → cost-based planning ([`plan`]) →
//! evaluation ([`eval`]) with solution sets. Supported: SELECT / ASK /
//! CONSTRUCT, BGPs with statistics-driven join ordering (greedy and
//! author-order fallbacks via [`Planner`]), OPTIONAL, UNION, MINUS,
//! FILTER (incl. EXISTS / NOT EXISTS), BIND, VALUES, property paths
//! (`^ / | * + ?` and negated sets), the builtin function library,
//! GROUP BY with aggregates, HAVING, ORDER BY, DISTINCT / REDUCED,
//! LIMIT / OFFSET.
//!
//! The single entry point is [`query`] / [`execute`] with
//! [`QueryOptions`] carrying the governor guard, the planner choice,
//! and EXPLAIN mode:
//!
//! ```
//! use feo_rdf::Graph;
//! use feo_rdf::turtle::parse_turtle_into;
//! use feo_sparql::query;
//!
//! let mut g = Graph::new();
//! parse_turtle_into(r#"
//!     @prefix feo: <https://purl.org/heals/feo#> .
//!     feo:Autumn a feo:SeasonCharacteristic .
//! "#, &mut g, &Default::default()).unwrap();
//! let result = query(&g,
//!     "PREFIX feo: <https://purl.org/heals/feo#>
//!      SELECT ?c WHERE { ?c a feo:SeasonCharacteristic }",
//!     &Default::default()).unwrap();
//! let table = result.expect_solutions();
//! assert!(table.contains_local("c", "Autumn"));
//! ```

pub mod ast;
pub mod error;
pub mod eval;
pub mod lexer;
pub mod parser;
pub mod plan;
pub mod regexlite;
pub mod results;
pub mod value;

pub use error::{Result, SparqlError};
#[allow(deprecated)]
pub use eval::{
    execute, execute_guarded, execute_prepared, execute_with, join_counters, query, query_guarded,
    query_with, ExecOptions, JoinCounters,
};
pub use parser::parse_query;
pub use plan::{plan_query, JoinAlgo, Plan, Planner, QueryOptions};
pub use results::{QueryResult, SolutionTable};
