//! Query result representation and formatting.
//!
//! [`SolutionTable`] owns its terms (cloned out of the graph dictionary)
//! so results outlive the queried graph. The `Display` implementation
//! renders the aligned text tables used throughout the paper's listings.

use std::fmt;

use feo_rdf::term::Term;

/// The result of executing a query.
#[derive(Debug, Clone)]
pub enum QueryResult {
    /// SELECT results.
    Solutions(SolutionTable),
    /// ASK result.
    Boolean(bool),
    /// CONSTRUCT result (boxed: a `Graph` with its statistics dwarfs the
    /// other variants).
    Graph(Box<feo_rdf::Graph>),
    /// Rendered query plan — returned instead of executing when
    /// [`crate::QueryOptions::explain`] is set.
    Plan(String),
}

impl QueryResult {
    /// The solution table, panicking if this is not a SELECT result.
    pub fn expect_solutions(self) -> SolutionTable {
        match self {
            QueryResult::Solutions(t) => t,
            other => panic!("expected SELECT solutions, got {other:?}"),
        }
    }

    pub fn expect_boolean(self) -> bool {
        match self {
            QueryResult::Boolean(b) => b,
            other => panic!("expected ASK boolean, got {other:?}"),
        }
    }

    pub fn expect_graph(self) -> feo_rdf::Graph {
        match self {
            QueryResult::Graph(g) => *g,
            other => panic!("expected CONSTRUCT graph, got {other:?}"),
        }
    }
}

/// A table of solutions: projected variables and one row per solution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SolutionTable {
    pub vars: Vec<String>,
    pub rows: Vec<Vec<Option<Term>>>,
}

impl SolutionTable {
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Index of a variable by name (without `?`).
    pub fn var_index(&self, name: &str) -> Option<usize> {
        self.vars.iter().position(|v| v == name)
    }

    /// The binding of `var` in row `row`, if bound.
    pub fn get(&self, row: usize, var: &str) -> Option<&Term> {
        let col = self.var_index(var)?;
        self.rows.get(row)?.get(col)?.as_ref()
    }

    /// All bindings of one variable across rows (skipping unbound).
    pub fn column(&self, var: &str) -> Vec<&Term> {
        match self.var_index(var) {
            Some(col) => self
                .rows
                .iter()
                .filter_map(|r| r.get(col).and_then(Option::as_ref))
                .collect(),
            None => Vec::new(),
        }
    }

    /// True if some row binds `var` to a term whose display form or IRI
    /// local name equals `needle`. Convenience for tests mirroring the
    /// paper's expected result tables.
    pub fn contains_local(&self, var: &str, needle: &str) -> bool {
        self.column(var).iter().any(|t| match t {
            Term::Iri(i) => i.local_name() == needle,
            Term::Literal(l) => l.lexical_form() == needle,
            Term::BlankNode(b) => b.as_str() == needle,
        })
    }

    /// Rows rendered with IRI local names — the compact form the paper's
    /// result tables use (`feo:Autumn` → `Autumn`).
    pub fn local_rows(&self) -> Vec<Vec<String>> {
        self.rows
            .iter()
            .map(|r| {
                r.iter()
                    .map(|c| match c {
                        None => String::new(),
                        Some(Term::Iri(i)) => i.local_name().to_string(),
                        Some(Term::Literal(l)) => l.lexical_form().to_string(),
                        Some(Term::BlankNode(b)) => format!("_:{}", b.as_str()),
                    })
                    .collect()
            })
            .collect()
    }

    /// Tab-separated export (full term syntax).
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        out.push_str(
            &self
                .vars
                .iter()
                .map(|v| format!("?{v}"))
                .collect::<Vec<_>>()
                .join("\t"),
        );
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .map(|c| c.as_ref().map(Term::to_string).unwrap_or_default())
                .collect();
            out.push_str(&cells.join("\t"));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for SolutionTable {
    /// Aligned ASCII table, terms shown with prefix-free local names —
    /// the presentation style of the paper's listing result tables.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let headers: Vec<String> = self.vars.iter().map(|v| format!("?{v}")).collect();
        let body = self.local_rows();
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        for row in &body {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let rule = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            write!(f, "+")?;
            for w in &widths {
                write!(f, "{}+", "-".repeat(w + 2))?;
            }
            writeln!(f)
        };
        rule(f)?;
        write!(f, "|")?;
        for (h, w) in headers.iter().zip(&widths) {
            write!(f, " {h:w$} |", w = w)?;
        }
        writeln!(f)?;
        rule(f)?;
        for row in &body {
            write!(f, "|")?;
            for (c, w) in row.iter().zip(&widths) {
                write!(f, " {c:w$} |", w = w)?;
            }
            writeln!(f)?;
        }
        rule(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> SolutionTable {
        SolutionTable {
            vars: vec!["characteristic".into(), "classes".into()],
            rows: vec![vec![
                Some(Term::iri("https://purl.org/heals/feo#Autumn")),
                Some(Term::iri("https://purl.org/heals/feo#SeasonCharacteristic")),
            ]],
        }
    }

    #[test]
    fn accessors() {
        let t = table();
        assert_eq!(t.len(), 1);
        assert!(t.contains_local("characteristic", "Autumn"));
        assert!(t.contains_local("classes", "SeasonCharacteristic"));
        assert!(!t.contains_local("classes", "Winter"));
        assert_eq!(t.column("characteristic").len(), 1);
        assert!(t.get(0, "classes").is_some());
        assert!(t.get(0, "missing").is_none());
    }

    #[test]
    fn display_renders_local_names() {
        let rendered = table().to_string();
        assert!(rendered.contains("?characteristic"));
        assert!(rendered.contains("Autumn"));
        assert!(rendered.contains("SeasonCharacteristic"));
        assert!(rendered.starts_with('+'));
    }

    #[test]
    fn tsv_uses_full_terms() {
        let tsv = table().to_tsv();
        assert!(tsv.contains("<https://purl.org/heals/feo#Autumn>"));
        assert!(tsv.starts_with("?characteristic\t?classes\n"));
    }

    #[test]
    fn unbound_cells_render_empty() {
        let t = SolutionTable {
            vars: vec!["a".into()],
            rows: vec![vec![None]],
        };
        assert!(t.to_string().contains("|"));
        assert_eq!(t.column("a").len(), 0);
    }
}
