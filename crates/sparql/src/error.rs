//! SPARQL error types.

use std::fmt;

use feo_rdf::governor::Exhausted;

/// An error raised while parsing or evaluating a SPARQL query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparqlError {
    /// Syntax error with position information.
    Parse {
        message: String,
        line: usize,
        column: usize,
    },
    /// Semantic error discovered at evaluation time (e.g. aggregate used
    /// outside GROUP BY projection, unknown prefix).
    Eval(String),
    /// An execution budget (solutions, deadline, cancellation) tripped
    /// during evaluation under a [`feo_rdf::governor::Guard`].
    Exhausted(Exhausted),
}

impl SparqlError {
    pub fn parse(message: impl Into<String>, line: usize, column: usize) -> Self {
        SparqlError::Parse {
            message: message.into(),
            line,
            column,
        }
    }

    pub fn eval(message: impl Into<String>) -> Self {
        SparqlError::Eval(message.into())
    }

    /// The budget trip behind this error, if it is an `Exhausted`.
    pub fn as_exhausted(&self) -> Option<&Exhausted> {
        match self {
            SparqlError::Exhausted(e) => Some(e),
            _ => None,
        }
    }
}

impl fmt::Display for SparqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparqlError::Parse {
                message,
                line,
                column,
            } => write!(f, "sparql parse error at {line}:{column}: {message}"),
            SparqlError::Eval(m) => write!(f, "sparql evaluation error: {m}"),
            SparqlError::Exhausted(e) => write!(f, "sparql evaluation stopped: {e}"),
        }
    }
}

impl std::error::Error for SparqlError {}

impl From<Exhausted> for SparqlError {
    fn from(e: Exhausted) -> Self {
        SparqlError::Exhausted(e)
    }
}

pub type Result<T> = std::result::Result<T, SparqlError>;
