//! SPARQL error types.

use std::fmt;

/// An error raised while parsing or evaluating a SPARQL query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparqlError {
    /// Syntax error with position information.
    Parse {
        message: String,
        line: usize,
        column: usize,
    },
    /// Semantic error discovered at evaluation time (e.g. aggregate used
    /// outside GROUP BY projection, unknown prefix).
    Eval(String),
}

impl SparqlError {
    pub fn parse(message: impl Into<String>, line: usize, column: usize) -> Self {
        SparqlError::Parse {
            message: message.into(),
            line,
            column,
        }
    }

    pub fn eval(message: impl Into<String>) -> Self {
        SparqlError::Eval(message.into())
    }
}

impl fmt::Display for SparqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparqlError::Parse {
                message,
                line,
                column,
            } => write!(f, "sparql parse error at {line}:{column}: {message}"),
            SparqlError::Eval(m) => write!(f, "sparql evaluation error: {m}"),
        }
    }
}

impl std::error::Error for SparqlError {}

pub type Result<T> = std::result::Result<T, SparqlError>;
