//! SPARQL tokenizer.
//!
//! Produces a flat token stream with positions; the parser is a recursive
//! descent over this stream. Keywords are recognized case-insensitively at
//! parse time (they are lexed as `Word`), so variable-free prefixed names
//! like `feo:Select` never collide with keywords.

use crate::error::{Result, SparqlError};

#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// `<...>` IRI reference (raw text, unresolved).
    IriRef(String),
    /// `prefix:local` or `prefix:` or `:local` — kept split.
    PName {
        prefix: String,
        local: String,
    },
    /// `?name` or `$name`.
    Var(String),
    /// `_:label`.
    BlankLabel(String),
    /// String literal (escapes already processed).
    Str(String),
    /// `@lang`.
    LangTag(String),
    /// Unsigned numeric literal; the bool flags (has_dot, has_exp).
    Number {
        lexical: String,
        dot: bool,
        exp: bool,
    },
    /// Bare word: keyword, `a`, `true`, `false`, function names.
    Word(String),
    /// `^^`
    DtSep,
    LBrace,
    RBrace,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Dot,
    Semicolon,
    Comma,
    Eq,
    Ne,
    Le,
    Ge,
    Lt,
    Gt,
    AndAnd,
    OrOr,
    Bang,
    Plus,
    Minus,
    Star,
    Slash,
    /// `|` (path alternative)
    Pipe,
    /// `^` (path inverse)
    Caret,
    /// `?` used as a path modifier (only emitted when not followed by a
    /// variable name).
    Question,
    Eof,
}

#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub tok: Tok,
    pub line: usize,
    pub column: usize,
}

pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    Lexer {
        chars: input.chars().collect(),
        pos: 0,
        line: 1,
        column: 1,
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    column: usize,
}

impl Lexer {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T> {
        Err(SparqlError::parse(msg, self.line, self.column))
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<char> {
        self.chars.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn run(mut self) -> Result<Vec<Token>> {
        let mut out = Vec::new();
        loop {
            self.skip_ws();
            let (line, column) = (self.line, self.column);
            let Some(c) = self.peek() else {
                out.push(Token {
                    tok: Tok::Eof,
                    line,
                    column,
                });
                return Ok(out);
            };
            let tok = self.next_token(c)?;
            out.push(Token { tok, line, column });
        }
    }

    fn skip_ws(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('#') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    fn next_token(&mut self, c: char) -> Result<Tok> {
        match c {
            '<' => {
                // IRI ref or comparison. An IRI ref has no whitespace and a
                // closing '>' before any space; comparisons are followed by
                // space/char. Heuristic per SPARQL grammar: after '<' an IRI
                // char or '>' means IRIREF.
                match self.peek_at(1) {
                    Some('=') => {
                        self.bump();
                        self.bump();
                        Ok(Tok::Le)
                    }
                    Some(n)
                        if !n.is_whitespace()
                            && n != '<'
                            && (n.is_alphanumeric() || "/:#_.-~%?&=+>".contains(n)) =>
                    {
                        self.lex_iri_ref()
                    }
                    _ => {
                        self.bump();
                        Ok(Tok::Lt)
                    }
                }
            }
            '>' => {
                self.bump();
                if self.peek() == Some('=') {
                    self.bump();
                    Ok(Tok::Ge)
                } else {
                    Ok(Tok::Gt)
                }
            }
            '?' | '$' => {
                // Variable if a name char follows, else path '?'.
                match self.peek_at(1) {
                    Some(n) if n.is_alphanumeric() || n == '_' => {
                        self.bump();
                        let mut name = String::new();
                        while let Some(c) = self.peek() {
                            if c.is_alphanumeric() || c == '_' {
                                name.push(c);
                                self.bump();
                            } else {
                                break;
                            }
                        }
                        Ok(Tok::Var(name))
                    }
                    _ => {
                        self.bump();
                        Ok(Tok::Question)
                    }
                }
            }
            '_' if self.peek_at(1) == Some(':') => {
                self.bump();
                self.bump();
                let mut label = String::new();
                while let Some(c) = self.peek() {
                    if c.is_alphanumeric() || c == '_' || c == '-' {
                        label.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                if label.is_empty() {
                    return self.err("empty blank node label");
                }
                Ok(Tok::BlankLabel(label))
            }
            '"' | '\'' => self.lex_string(c),
            '@' => {
                self.bump();
                let mut tag = String::new();
                while let Some(c) = self.peek() {
                    if c.is_ascii_alphanumeric() || c == '-' {
                        tag.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                if tag.is_empty() {
                    return self.err("empty language tag");
                }
                Ok(Tok::LangTag(tag))
            }
            '^' => {
                self.bump();
                if self.peek() == Some('^') {
                    self.bump();
                    Ok(Tok::DtSep)
                } else {
                    Ok(Tok::Caret)
                }
            }
            '{' => {
                self.bump();
                Ok(Tok::LBrace)
            }
            '}' => {
                self.bump();
                Ok(Tok::RBrace)
            }
            '(' => {
                self.bump();
                Ok(Tok::LParen)
            }
            ')' => {
                self.bump();
                Ok(Tok::RParen)
            }
            '[' => {
                self.bump();
                Ok(Tok::LBracket)
            }
            ']' => {
                self.bump();
                Ok(Tok::RBracket)
            }
            ';' => {
                self.bump();
                Ok(Tok::Semicolon)
            }
            ',' => {
                self.bump();
                Ok(Tok::Comma)
            }
            '=' => {
                self.bump();
                Ok(Tok::Eq)
            }
            '!' => {
                self.bump();
                if self.peek() == Some('=') {
                    self.bump();
                    Ok(Tok::Ne)
                } else {
                    Ok(Tok::Bang)
                }
            }
            '&' if self.peek_at(1) == Some('&') => {
                self.bump();
                self.bump();
                Ok(Tok::AndAnd)
            }
            '|' => {
                self.bump();
                if self.peek() == Some('|') {
                    self.bump();
                    Ok(Tok::OrOr)
                } else {
                    Ok(Tok::Pipe)
                }
            }
            '+' => {
                self.bump();
                Ok(Tok::Plus)
            }
            '-' => {
                self.bump();
                Ok(Tok::Minus)
            }
            '*' => {
                self.bump();
                Ok(Tok::Star)
            }
            '/' => {
                self.bump();
                Ok(Tok::Slash)
            }
            '.' => {
                // Number like .5 or the DOT terminator.
                if matches!(self.peek_at(1), Some(d) if d.is_ascii_digit()) {
                    self.lex_number()
                } else {
                    self.bump();
                    Ok(Tok::Dot)
                }
            }
            c if c.is_ascii_digit() => self.lex_number(),
            c if c.is_alphabetic() || c == '_' => self.lex_word_or_pname(),
            ':' => self.lex_word_or_pname(),
            other => self.err(format!("unexpected character '{other}'")),
        }
    }

    fn lex_iri_ref(&mut self) -> Result<Tok> {
        self.bump(); // '<'
        let mut out = String::new();
        loop {
            match self.bump() {
                Some('>') => return Ok(Tok::IriRef(out)),
                Some('\\') => match self.bump() {
                    Some('u') => out.push(self.unicode_escape(4)?),
                    Some('U') => out.push(self.unicode_escape(8)?),
                    _ => return self.err("invalid IRI escape"),
                },
                Some(c) if c.is_whitespace() => return self.err("whitespace in IRI"),
                Some(c) => out.push(c),
                None => return self.err("unterminated IRI"),
            }
        }
    }

    fn lex_string(&mut self, quote: char) -> Result<Tok> {
        // Long form?
        if self.peek_at(1) == Some(quote) && self.peek_at(2) == Some(quote) {
            self.bump();
            self.bump();
            self.bump();
            let mut out = String::new();
            loop {
                if self.peek() == Some(quote)
                    && self.peek_at(1) == Some(quote)
                    && self.peek_at(2) == Some(quote)
                {
                    let mut run = 3;
                    while self.peek_at(run) == Some(quote) {
                        run += 1;
                    }
                    for _ in 0..(run - 3) {
                        out.push(quote);
                        self.bump();
                    }
                    self.bump();
                    self.bump();
                    self.bump();
                    return Ok(Tok::Str(out));
                }
                match self.bump() {
                    Some('\\') => out.push(self.escape()?),
                    Some(c) => out.push(c),
                    None => return self.err("unterminated long string"),
                }
            }
        }
        self.bump();
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(c) if c == quote => return Ok(Tok::Str(out)),
                Some('\\') => out.push(self.escape()?),
                Some('\n') => return self.err("newline in string literal"),
                Some(c) => out.push(c),
                None => return self.err("unterminated string"),
            }
        }
    }

    fn escape(&mut self) -> Result<char> {
        match self.bump() {
            Some('t') => Ok('\t'),
            Some('b') => Ok('\u{8}'),
            Some('n') => Ok('\n'),
            Some('r') => Ok('\r'),
            Some('f') => Ok('\u{c}'),
            Some('"') => Ok('"'),
            Some('\'') => Ok('\''),
            Some('\\') => Ok('\\'),
            Some('u') => self.unicode_escape(4),
            Some('U') => self.unicode_escape(8),
            Some(c) => self.err(format!("invalid escape '\\{c}'")),
            None => self.err("unterminated escape"),
        }
    }

    fn unicode_escape(&mut self, digits: usize) -> Result<char> {
        let mut v: u32 = 0;
        for _ in 0..digits {
            match self.bump().and_then(|c| c.to_digit(16)) {
                Some(d) => v = v * 16 + d,
                None => return self.err("invalid unicode escape"),
            }
        }
        char::from_u32(v).map_or_else(|| self.err("invalid code point"), Ok)
    }

    fn lex_number(&mut self) -> Result<Tok> {
        let mut s = String::new();
        let mut dot = false;
        let mut exp = false;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                s.push(c);
                self.bump();
            } else if c == '.' && !dot && !exp {
                match self.peek_at(1) {
                    Some(d) if d.is_ascii_digit() => {
                        dot = true;
                        s.push(c);
                        self.bump();
                    }
                    _ => break,
                }
            } else if (c == 'e' || c == 'E') && !exp {
                match self.peek_at(1) {
                    Some(d) if d.is_ascii_digit() || d == '+' || d == '-' => {
                        exp = true;
                        s.push(c);
                        self.bump();
                        if matches!(self.peek(), Some('+') | Some('-')) {
                            s.push(self.bump().unwrap());
                        }
                    }
                    _ => break,
                }
            } else {
                break;
            }
        }
        Ok(Tok::Number {
            lexical: s,
            dot,
            exp,
        })
    }

    /// A bare word (keyword / builtin) or a prefixed name. The word form
    /// ends before ':'; if ':' immediately follows, it's a PName.
    fn lex_word_or_pname(&mut self) -> Result<Tok> {
        let mut word = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' || c == '-' {
                word.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if self.peek() == Some(':') {
            self.bump();
            let mut local = String::new();
            while let Some(c) = self.peek() {
                if c.is_alphanumeric() || c == '_' || c == '-' {
                    local.push(c);
                    self.bump();
                } else if c == '.' {
                    match self.peek_at(1) {
                        Some(n) if n.is_alphanumeric() || n == '_' || n == '-' => {
                            local.push(c);
                            self.bump();
                        }
                        _ => break,
                    }
                } else if c == '\\' {
                    self.bump();
                    match self.bump() {
                        Some(e) if "_~.-!$&'()*+,;=/?#@%".contains(e) => local.push(e),
                        _ => return self.err("invalid local name escape"),
                    }
                } else {
                    break;
                }
            }
            return Ok(Tok::PName {
                prefix: word,
                local,
            });
        }
        if word.is_empty() {
            return self.err("unexpected ':'");
        }
        Ok(Tok::Word(word))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        tokenize(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn variables_and_question_modifier() {
        assert_eq!(
            toks("?x $y ?"),
            vec![
                Tok::Var("x".into()),
                Tok::Var("y".into()),
                Tok::Question,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn iri_vs_less_than() {
        assert_eq!(
            toks("<http://e/a> < <= ?x"),
            vec![
                Tok::IriRef("http://e/a".into()),
                Tok::Lt,
                Tok::Le,
                Tok::Var("x".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn pnames_and_words() {
        assert_eq!(
            toks("SELECT feo:Autumn rdfs:subClassOf a :x"),
            vec![
                Tok::Word("SELECT".into()),
                Tok::PName {
                    prefix: "feo".into(),
                    local: "Autumn".into()
                },
                Tok::PName {
                    prefix: "rdfs".into(),
                    local: "subClassOf".into()
                },
                Tok::Word("a".into()),
                Tok::PName {
                    prefix: "".into(),
                    local: "x".into()
                },
                Tok::Eof
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("= != <= >= && || ! + - * / ^^ ^ | ."),
            vec![
                Tok::Eq,
                Tok::Ne,
                Tok::Le,
                Tok::Ge,
                Tok::AndAnd,
                Tok::OrOr,
                Tok::Bang,
                Tok::Plus,
                Tok::Minus,
                Tok::Star,
                Tok::Slash,
                Tok::DtSep,
                Tok::Caret,
                Tok::Pipe,
                Tok::Dot,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("42 3.5 1e3 .5"),
            vec![
                Tok::Number {
                    lexical: "42".into(),
                    dot: false,
                    exp: false
                },
                Tok::Number {
                    lexical: "3.5".into(),
                    dot: true,
                    exp: false
                },
                Tok::Number {
                    lexical: "1e3".into(),
                    dot: false,
                    exp: true
                },
                Tok::Number {
                    lexical: ".5".into(),
                    dot: true,
                    exp: false
                },
                Tok::Eof
            ]
        );
    }

    #[test]
    fn strings_and_tags() {
        assert_eq!(
            toks(r#""hi" 'there' "esc\"d" "v"@en "x"^^xsd:integer"#),
            vec![
                Tok::Str("hi".into()),
                Tok::Str("there".into()),
                Tok::Str("esc\"d".into()),
                Tok::Str("v".into()),
                Tok::LangTag("en".into()),
                Tok::Str("x".into()),
                Tok::DtSep,
                Tok::PName {
                    prefix: "xsd".into(),
                    local: "integer".into()
                },
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("SELECT # all of it\n *"),
            vec![Tok::Word("SELECT".into()), Tok::Star, Tok::Eof]
        );
    }

    #[test]
    fn blank_labels() {
        assert_eq!(toks("_:b0"), vec![Tok::BlankLabel("b0".into()), Tok::Eof]);
    }

    #[test]
    fn error_position() {
        let err = tokenize("?x ~").unwrap_err();
        match err {
            SparqlError::Parse { line, column, .. } => {
                assert_eq!(line, 1);
                assert_eq!(column, 4);
            }
            _ => panic!(),
        }
    }
}
