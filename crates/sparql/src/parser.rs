//! Recursive-descent SPARQL parser.
//!
//! Covers the SPARQL 1.1 fragment the workspace needs (and then some):
//! SELECT (with expressions, DISTINCT/REDUCED), ASK, CONSTRUCT; group
//! graph patterns with OPTIONAL / UNION / MINUS / FILTER / BIND / VALUES
//! and nested groups; property paths; blank-node property lists and
//! collections; the full expression grammar with builtins, EXISTS /
//! NOT EXISTS, IN / NOT IN and aggregates; GROUP BY / HAVING / ORDER BY /
//! LIMIT / OFFSET.

use std::collections::HashMap;

use feo_rdf::vocab::rdf;

use crate::ast::*;
use crate::error::{Result, SparqlError};
use crate::lexer::{tokenize, Tok, Token};

/// Parses a SPARQL query string.
pub fn parse_query(input: &str) -> Result<Query> {
    let tokens = tokenize(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        prefixes: HashMap::new(),
        base: None,
        bnode_counter: 0,
    };
    let q = p.parse_query()?;
    p.expect_eof()?;
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    prefixes: HashMap<String, String>,
    base: Option<String>,
    bnode_counter: u64,
}

impl Parser {
    fn here(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T> {
        let t = self.here();
        Err(SparqlError::parse(msg, t.line, t.column))
    }

    fn peek(&self) -> &Tok {
        &self.here().tok
    }

    fn peek2(&self) -> &Tok {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].tok
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].tok.clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == tok {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<()> {
        if self.peek() == &tok {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {what}, found {:?}", self.peek()))
        }
    }

    /// Case-insensitive keyword check without consuming.
    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Word(w) if w.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err(format!("expected '{kw}', found {:?}", self.peek()))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if matches!(self.peek(), Tok::Eof) {
            Ok(())
        } else {
            self.err(format!("unexpected trailing input: {:?}", self.peek()))
        }
    }

    fn fresh_blank(&mut self) -> TermPattern {
        let label = format!("qb{}", self.bnode_counter);
        self.bnode_counter += 1;
        TermPattern::Blank(label)
    }

    // ---- top level ---------------------------------------------------

    fn parse_query(&mut self) -> Result<Query> {
        self.parse_prologue()?;
        if self.at_kw("SELECT") {
            self.parse_select()
        } else if self.at_kw("ASK") {
            self.bump();
            let where_pattern = self.parse_where_clause()?;
            let modifiers = self.parse_modifiers()?;
            Ok(Query {
                form: QueryForm::Ask,
                where_pattern,
                modifiers,
            })
        } else if self.at_kw("CONSTRUCT") {
            self.bump();
            self.expect(Tok::LBrace, "'{' after CONSTRUCT")?;
            let mut template = Vec::new();
            while !matches!(self.peek(), Tok::RBrace) {
                let mut triples = self.parse_triples_same_subject()?;
                // Paths are not allowed in templates.
                for t in &triples {
                    if !t.path.is_trivial() {
                        return self.err("property paths are not allowed in CONSTRUCT templates");
                    }
                }
                template.append(&mut triples);
                if !self.eat(&Tok::Dot) {
                    break;
                }
            }
            self.expect(Tok::RBrace, "'}' closing CONSTRUCT template")?;
            let where_pattern = self.parse_where_clause()?;
            let modifiers = self.parse_modifiers()?;
            Ok(Query {
                form: QueryForm::Construct { template },
                where_pattern,
                modifiers,
            })
        } else {
            self.err("expected SELECT, ASK, or CONSTRUCT")
        }
    }

    fn parse_prologue(&mut self) -> Result<()> {
        loop {
            if self.eat_kw("PREFIX") {
                let (prefix, local) = match self.bump() {
                    Tok::PName { prefix, local } => (prefix, local),
                    _ => return self.err("expected prefix name after PREFIX"),
                };
                if !local.is_empty() {
                    return self.err("prefix declaration must end with ':'");
                }
                let iri = match self.bump() {
                    Tok::IriRef(iri) => self.resolve(&iri),
                    _ => return self.err("expected IRI after prefix name"),
                };
                self.prefixes.insert(prefix, iri);
            } else if self.eat_kw("BASE") {
                let iri = match self.bump() {
                    Tok::IriRef(iri) => iri,
                    _ => return self.err("expected IRI after BASE"),
                };
                self.base = Some(iri);
            } else {
                return Ok(());
            }
        }
    }

    fn resolve(&self, raw: &str) -> String {
        feo_rdf::turtle::resolve_iri(self.base.as_deref(), raw)
    }

    fn parse_select(&mut self) -> Result<Query> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        let reduced = !distinct && self.eat_kw("REDUCED");
        let projection = if self.eat(&Tok::Star) {
            Projection::All
        } else {
            let mut items = Vec::new();
            loop {
                match self.peek().clone() {
                    Tok::Var(v) => {
                        self.bump();
                        items.push(ProjectionItem::Var(v));
                    }
                    Tok::LParen => {
                        self.bump();
                        let e = self.parse_expr()?;
                        self.expect_kw("AS")?;
                        let v = match self.bump() {
                            Tok::Var(v) => v,
                            _ => return self.err("expected variable after AS"),
                        };
                        self.expect(Tok::RParen, "')' closing SELECT expression")?;
                        items.push(ProjectionItem::Expr(e, v));
                    }
                    _ => break,
                }
            }
            if items.is_empty() {
                return self.err("SELECT needs '*' or at least one variable/expression");
            }
            Projection::Items(items)
        };
        let where_pattern = self.parse_where_clause()?;
        let modifiers = self.parse_modifiers()?;
        Ok(Query {
            form: QueryForm::Select {
                distinct,
                reduced,
                projection,
            },
            where_pattern,
            modifiers,
        })
    }

    fn parse_where_clause(&mut self) -> Result<GroupPattern> {
        self.eat_kw("WHERE");
        self.parse_group_graph_pattern()
    }

    fn parse_modifiers(&mut self) -> Result<Modifiers> {
        let mut m = Modifiers::default();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                match self.peek().clone() {
                    Tok::Var(v) => {
                        self.bump();
                        m.group_by.push(GroupCondition::Var(v));
                    }
                    Tok::LParen => {
                        self.bump();
                        let e = self.parse_expr()?;
                        let alias = if self.eat_kw("AS") {
                            match self.bump() {
                                Tok::Var(v) => Some(v),
                                _ => return self.err("expected variable after AS"),
                            }
                        } else {
                            None
                        };
                        self.expect(Tok::RParen, "')' in GROUP BY")?;
                        m.group_by.push(GroupCondition::Expr(e, alias));
                    }
                    _ => break,
                }
            }
            if m.group_by.is_empty() {
                return self.err("GROUP BY needs at least one condition");
            }
        }
        if self.eat_kw("HAVING") {
            while self.at_constraint_start() {
                m.having.push(self.parse_constraint()?);
            }
            if m.having.is_empty() {
                return self.err("HAVING needs at least one constraint");
            }
        }
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                if self.eat_kw("ASC") {
                    self.expect(Tok::LParen, "'(' after ASC")?;
                    let e = self.parse_expr()?;
                    self.expect(Tok::RParen, "')' after ASC expression")?;
                    m.order_by.push(OrderCondition {
                        expr: e,
                        descending: false,
                    });
                } else if self.eat_kw("DESC") {
                    self.expect(Tok::LParen, "'(' after DESC")?;
                    let e = self.parse_expr()?;
                    self.expect(Tok::RParen, "')' after DESC expression")?;
                    m.order_by.push(OrderCondition {
                        expr: e,
                        descending: true,
                    });
                } else if let Tok::Var(v) = self.peek().clone() {
                    self.bump();
                    m.order_by.push(OrderCondition {
                        expr: Expr::Var(v),
                        descending: false,
                    });
                } else if matches!(self.peek(), Tok::LParen) {
                    self.bump();
                    let e = self.parse_expr()?;
                    self.expect(Tok::RParen, "')' closing ORDER BY expression")?;
                    m.order_by.push(OrderCondition {
                        expr: e,
                        descending: false,
                    });
                } else {
                    break;
                }
            }
            if m.order_by.is_empty() {
                return self.err("ORDER BY needs at least one condition");
            }
        }
        // LIMIT and OFFSET may appear in either order.
        loop {
            if self.eat_kw("LIMIT") {
                m.limit = Some(self.parse_unsigned()?);
            } else if self.eat_kw("OFFSET") {
                m.offset = Some(self.parse_unsigned()?);
            } else {
                break;
            }
        }
        Ok(m)
    }

    /// True when the next token can begin a HAVING/FILTER constraint:
    /// `(`, a builtin or aggregate name, or (NOT) EXISTS.
    fn at_constraint_start(&self) -> bool {
        match self.peek() {
            Tok::LParen => true,
            Tok::Word(w) => {
                Builtin::from_name(w).is_some()
                    || AggregateKind::from_name(w).is_some()
                    || w.eq_ignore_ascii_case("EXISTS")
                    || (w.eq_ignore_ascii_case("NOT") && peek2_is_exists(self))
            }
            _ => false,
        }
    }

    fn parse_unsigned(&mut self) -> Result<usize> {
        match self.bump() {
            Tok::Number {
                lexical,
                dot: false,
                exp: false,
            } => lexical
                .parse()
                .map_err(|_| SparqlError::eval("integer out of range")),
            _ => self.err("expected a non-negative integer"),
        }
    }

    // ---- group graph patterns -----------------------------------------

    fn parse_group_graph_pattern(&mut self) -> Result<GroupPattern> {
        self.expect(Tok::LBrace, "'{' opening group pattern")?;
        let mut group = GroupPattern::default();
        loop {
            match self.peek().clone() {
                Tok::RBrace => {
                    self.bump();
                    return Ok(group);
                }
                Tok::Eof => return self.err("unterminated group pattern"),
                Tok::LBrace => {
                    // Nested group, possibly a UNION chain.
                    let first = self.parse_group_graph_pattern()?;
                    if self.at_kw("UNION") {
                        let mut arms = vec![first];
                        while self.eat_kw("UNION") {
                            arms.push(self.parse_group_graph_pattern()?);
                        }
                        group.elements.push(GroupElement::Union(arms));
                    } else {
                        group.elements.push(GroupElement::Group(first));
                    }
                    self.eat(&Tok::Dot);
                }
                Tok::Word(w) if w.eq_ignore_ascii_case("OPTIONAL") => {
                    self.bump();
                    let inner = self.parse_group_graph_pattern()?;
                    group.elements.push(GroupElement::Optional(inner));
                    self.eat(&Tok::Dot);
                }
                Tok::Word(w) if w.eq_ignore_ascii_case("MINUS") => {
                    self.bump();
                    let inner = self.parse_group_graph_pattern()?;
                    group.elements.push(GroupElement::Minus(inner));
                    self.eat(&Tok::Dot);
                }
                Tok::Word(w) if w.eq_ignore_ascii_case("FILTER") => {
                    self.bump();
                    let e = self.parse_constraint()?;
                    group.elements.push(GroupElement::Filter(e));
                    self.eat(&Tok::Dot);
                }
                Tok::Word(w) if w.eq_ignore_ascii_case("BIND") => {
                    self.bump();
                    self.expect(Tok::LParen, "'(' after BIND")?;
                    let e = self.parse_expr()?;
                    self.expect_kw("AS")?;
                    let v = match self.bump() {
                        Tok::Var(v) => v,
                        _ => return self.err("expected variable after AS"),
                    };
                    self.expect(Tok::RParen, "')' closing BIND")?;
                    group.elements.push(GroupElement::Bind(e, v));
                    self.eat(&Tok::Dot);
                }
                Tok::Word(w) if w.eq_ignore_ascii_case("VALUES") => {
                    self.bump();
                    let block = self.parse_values_block()?;
                    group.elements.push(GroupElement::Values(block));
                    self.eat(&Tok::Dot);
                }
                _ => {
                    let mut triples = self.parse_triples_same_subject()?;
                    // Adjacent triple statements form ONE basic graph
                    // pattern (so join reordering sees them together).
                    if let Some(GroupElement::Triples(prev)) = group.elements.last_mut() {
                        prev.append(&mut triples);
                    } else {
                        group.elements.push(GroupElement::Triples(triples));
                    }
                    // Consume '.' separators between triple blocks.
                    while self.eat(&Tok::Dot) {}
                }
            }
        }
    }

    fn parse_values_block(&mut self) -> Result<ValuesBlock> {
        // Single-var form: VALUES ?x { v... } ; multi: VALUES (?x ?y) { (a b) ... }
        if let Tok::Var(v) = self.peek().clone() {
            self.bump();
            self.expect(Tok::LBrace, "'{' opening VALUES data")?;
            let mut rows = Vec::new();
            while !matches!(self.peek(), Tok::RBrace) {
                rows.push(vec![self.parse_data_value()?]);
            }
            self.bump();
            return Ok(ValuesBlock {
                vars: vec![v],
                rows,
            });
        }
        self.expect(Tok::LParen, "'(' opening VALUES variable list")?;
        let mut vars = Vec::new();
        while let Tok::Var(v) = self.peek().clone() {
            self.bump();
            vars.push(v);
        }
        self.expect(Tok::RParen, "')' closing VALUES variable list")?;
        self.expect(Tok::LBrace, "'{' opening VALUES data")?;
        let mut rows = Vec::new();
        while self.eat(&Tok::LParen) {
            let mut row = Vec::new();
            for _ in 0..vars.len() {
                row.push(self.parse_data_value()?);
            }
            self.expect(Tok::RParen, "')' closing VALUES row")?;
            rows.push(row);
        }
        self.expect(Tok::RBrace, "'}' closing VALUES data")?;
        Ok(ValuesBlock { vars, rows })
    }

    fn parse_data_value(&mut self) -> Result<Option<TermPattern>> {
        if self.eat_kw("UNDEF") {
            return Ok(None);
        }
        let tp = self.parse_graph_term()?;
        Ok(Some(tp))
    }

    // ---- triples ------------------------------------------------------

    /// Parses one TriplesSameSubjectPath production, expanding blank-node
    /// property lists and collections.
    fn parse_triples_same_subject(&mut self) -> Result<Vec<TriplePattern>> {
        let mut acc = Vec::new();
        let subject = match self.peek() {
            Tok::LBracket => {
                let node = self.parse_blank_node_property_list(&mut acc)?;
                // A bare `[ ... ]` may be the whole statement.
                if matches!(self.peek(), Tok::Dot | Tok::RBrace) {
                    return Ok(acc);
                }
                node
            }
            Tok::LParen => self.parse_collection(&mut acc)?,
            _ => self.parse_term_pattern()?,
        };
        self.parse_property_list(&subject, &mut acc)?;
        Ok(acc)
    }

    fn parse_property_list(
        &mut self,
        subject: &TermPattern,
        acc: &mut Vec<TriplePattern>,
    ) -> Result<()> {
        loop {
            let path = self.parse_verb()?;
            loop {
                let object = match self.peek() {
                    Tok::LBracket => self.parse_blank_node_property_list(acc)?,
                    Tok::LParen => self.parse_collection(acc)?,
                    _ => self.parse_term_pattern()?,
                };
                acc.push(TriplePattern {
                    subject: subject.clone(),
                    path: path.clone(),
                    object,
                });
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            if self.eat(&Tok::Semicolon) {
                // Trailing ';' before '.' or '}' is legal.
                if matches!(self.peek(), Tok::Dot | Tok::RBrace | Tok::Eof) {
                    return Ok(());
                }
            } else {
                return Ok(());
            }
        }
    }

    fn parse_blank_node_property_list(
        &mut self,
        acc: &mut Vec<TriplePattern>,
    ) -> Result<TermPattern> {
        self.expect(Tok::LBracket, "'['")?;
        let node = self.fresh_blank();
        if self.eat(&Tok::RBracket) {
            return Ok(node);
        }
        self.parse_property_list(&node, acc)?;
        self.expect(Tok::RBracket, "']' closing property list")?;
        Ok(node)
    }

    fn parse_collection(&mut self, acc: &mut Vec<TriplePattern>) -> Result<TermPattern> {
        self.expect(Tok::LParen, "'(' opening collection")?;
        let mut items = Vec::new();
        while !self.eat(&Tok::RParen) {
            if matches!(self.peek(), Tok::Eof) {
                return self.err("unterminated collection");
            }
            let item = match self.peek() {
                Tok::LBracket => self.parse_blank_node_property_list(acc)?,
                Tok::LParen => self.parse_collection(acc)?,
                _ => self.parse_term_pattern()?,
            };
            items.push(item);
        }
        if items.is_empty() {
            return Ok(TermPattern::Iri(rdf::NIL.to_string()));
        }
        let mut head = TermPattern::Iri(rdf::NIL.to_string());
        for item in items.into_iter().rev() {
            let node = self.fresh_blank();
            acc.push(TriplePattern {
                subject: node.clone(),
                path: Path::Iri(rdf::FIRST.to_string()),
                object: item,
            });
            acc.push(TriplePattern {
                subject: node.clone(),
                path: Path::Iri(rdf::REST.to_string()),
                object: head,
            });
            head = node;
        }
        Ok(head)
    }

    /// Subject/object term (no bnode property lists here).
    fn parse_term_pattern(&mut self) -> Result<TermPattern> {
        match self.peek().clone() {
            Tok::Var(v) => {
                self.bump();
                Ok(TermPattern::Var(v))
            }
            _ => self.parse_graph_term(),
        }
    }

    /// Ground term: IRI, prefixed name, literal, blank label, boolean.
    fn parse_graph_term(&mut self) -> Result<TermPattern> {
        match self.bump() {
            Tok::IriRef(iri) => Ok(TermPattern::Iri(self.resolve(&iri))),
            Tok::PName { prefix, local } => Ok(TermPattern::Iri(self.expand(&prefix, &local)?)),
            Tok::BlankLabel(l) => Ok(TermPattern::Blank(format!("u{l}"))),
            Tok::Str(s) => match self.peek().clone() {
                Tok::LangTag(tag) => {
                    self.bump();
                    Ok(TermPattern::Literal(LiteralPattern {
                        lexical: s,
                        language: Some(tag.to_ascii_lowercase()),
                        datatype: None,
                    }))
                }
                Tok::DtSep => {
                    self.bump();
                    let dt = match self.bump() {
                        Tok::IriRef(iri) => self.resolve(&iri),
                        Tok::PName { prefix, local } => self.expand(&prefix, &local)?,
                        _ => return self.err("expected datatype IRI after '^^'"),
                    };
                    Ok(TermPattern::Literal(LiteralPattern {
                        lexical: s,
                        language: None,
                        datatype: Some(dt),
                    }))
                }
                _ => Ok(TermPattern::Literal(LiteralPattern {
                    lexical: s,
                    language: None,
                    datatype: None,
                })),
            },
            Tok::Number { lexical, dot, exp } => {
                Ok(TermPattern::Literal(numeric_literal(&lexical, dot, exp)))
            }
            Tok::Minus => match self.bump() {
                Tok::Number { lexical, dot, exp } => Ok(TermPattern::Literal(numeric_literal(
                    &format!("-{lexical}"),
                    dot,
                    exp,
                ))),
                _ => self.err("expected number after '-'"),
            },
            Tok::Plus => match self.bump() {
                Tok::Number { lexical, dot, exp } => {
                    Ok(TermPattern::Literal(numeric_literal(&lexical, dot, exp)))
                }
                _ => self.err("expected number after '+'"),
            },
            Tok::Word(w) if w.eq_ignore_ascii_case("true") => {
                Ok(TermPattern::Literal(boolean_literal(true)))
            }
            Tok::Word(w) if w.eq_ignore_ascii_case("false") => {
                Ok(TermPattern::Literal(boolean_literal(false)))
            }
            other => {
                // restore position for error message accuracy
                self.pos = self.pos.saturating_sub(1);
                self.err(format!("expected a term, found {other:?}"))
            }
        }
    }

    fn expand(&self, prefix: &str, local: &str) -> Result<String> {
        match self.prefixes.get(prefix) {
            Some(ns) => Ok(format!("{ns}{local}")),
            None => Err(SparqlError::eval(format!("undeclared prefix '{prefix}:'"))),
        }
    }

    // ---- property paths -------------------------------------------------

    /// Verb position: a variable, `a`, or a property path.
    fn parse_verb(&mut self) -> Result<Path> {
        if let Tok::Var(v) = self.peek().clone() {
            self.bump();
            return Ok(Path::Var(v));
        }
        self.parse_path_alternative()
    }

    fn parse_path_alternative(&mut self) -> Result<Path> {
        let mut left = self.parse_path_sequence()?;
        while self.eat(&Tok::Pipe) {
            let right = self.parse_path_sequence()?;
            left = Path::Alternative(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_path_sequence(&mut self) -> Result<Path> {
        let mut left = self.parse_path_elt_or_inverse()?;
        while self.eat(&Tok::Slash) {
            let right = self.parse_path_elt_or_inverse()?;
            left = Path::Sequence(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_path_elt_or_inverse(&mut self) -> Result<Path> {
        if self.eat(&Tok::Caret) {
            let inner = self.parse_path_elt()?;
            Ok(Path::Inverse(Box::new(inner)))
        } else {
            self.parse_path_elt()
        }
    }

    fn parse_path_elt(&mut self) -> Result<Path> {
        let primary = self.parse_path_primary()?;
        Ok(match self.peek() {
            Tok::Question => {
                self.bump();
                Path::ZeroOrOne(Box::new(primary))
            }
            Tok::Star => {
                self.bump();
                Path::ZeroOrMore(Box::new(primary))
            }
            Tok::Plus => {
                self.bump();
                Path::OneOrMore(Box::new(primary))
            }
            _ => primary,
        })
    }

    fn parse_path_primary(&mut self) -> Result<Path> {
        match self.peek().clone() {
            Tok::IriRef(iri) => {
                self.bump();
                Ok(Path::Iri(self.resolve(&iri)))
            }
            Tok::PName { prefix, local } => {
                self.bump();
                Ok(Path::Iri(self.expand(&prefix, &local)?))
            }
            Tok::Word(w) if w == "a" => {
                self.bump();
                Ok(Path::Iri(rdf::TYPE.to_string()))
            }
            Tok::Bang => {
                self.bump();
                self.parse_negated_property_set()
            }
            Tok::LParen => {
                self.bump();
                let p = self.parse_path_alternative()?;
                self.expect(Tok::RParen, "')' closing path group")?;
                Ok(p)
            }
            other => self.err(format!("expected a path, found {other:?}")),
        }
    }

    fn parse_negated_property_set(&mut self) -> Result<Path> {
        let mut members = Vec::new();
        let one = |p: &mut Self| -> Result<(String, bool)> {
            let inverted = p.eat(&Tok::Caret);
            match p.bump() {
                Tok::IriRef(iri) => Ok((p.resolve(&iri), inverted)),
                Tok::PName { prefix, local } => Ok((p.expand(&prefix, &local)?, inverted)),
                Tok::Word(w) if w == "a" => Ok((rdf::TYPE.to_string(), inverted)),
                other => p.err(format!(
                    "expected IRI in negated property set, found {other:?}"
                )),
            }
        };
        if self.eat(&Tok::LParen) {
            loop {
                members.push(one(self)?);
                if !self.eat(&Tok::Pipe) {
                    break;
                }
            }
            self.expect(Tok::RParen, "')' closing negated property set")?;
        } else {
            members.push(one(self)?);
        }
        Ok(Path::Negated(members))
    }

    // ---- expressions ---------------------------------------------------

    /// FILTER constraint: parenthesized expression, builtin call, or
    /// EXISTS / NOT EXISTS.
    fn parse_constraint(&mut self) -> Result<Expr> {
        if self.at_kw("EXISTS") || (self.at_kw("NOT") && peek2_is_exists(self)) {
            return self.parse_exists();
        }
        if let Tok::Word(w) = self.peek().clone() {
            if Builtin::from_name(&w).is_some() || AggregateKind::from_name(&w).is_some() {
                return self.parse_primary_expr();
            }
        }
        self.expect(Tok::LParen, "'(' opening FILTER constraint")?;
        let e = self.parse_expr()?;
        self.expect(Tok::RParen, "')' closing FILTER constraint")?;
        Ok(e)
    }

    fn parse_exists(&mut self) -> Result<Expr> {
        let negated = self.eat_kw("NOT");
        self.expect_kw("EXISTS")?;
        let group = self.parse_group_graph_pattern()?;
        Ok(Expr::Exists(group, negated))
    }

    fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut left = self.parse_and()?;
        while self.eat(&Tok::OrOr) {
            let right = self.parse_and()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut left = self.parse_relational()?;
        while self.eat(&Tok::AndAnd) {
            let right = self.parse_relational()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_relational(&mut self) -> Result<Expr> {
        let left = self.parse_additive()?;
        let op = match self.peek() {
            Tok::Eq => CompareOp::Eq,
            Tok::Ne => CompareOp::Ne,
            Tok::Lt => CompareOp::Lt,
            Tok::Le => CompareOp::Le,
            Tok::Gt => CompareOp::Gt,
            Tok::Ge => CompareOp::Ge,
            Tok::Word(w) if w.eq_ignore_ascii_case("IN") => {
                self.bump();
                let list = self.parse_expr_list()?;
                return Ok(Expr::In(Box::new(left), list, false));
            }
            Tok::Word(w) if w.eq_ignore_ascii_case("NOT") && peek2_is_in(self) => {
                self.bump();
                self.bump();
                let list = self.parse_expr_list()?;
                return Ok(Expr::In(Box::new(left), list, true));
            }
            _ => return Ok(left),
        };
        self.bump();
        let right = self.parse_additive()?;
        Ok(Expr::Compare(op, Box::new(left), Box::new(right)))
    }

    fn parse_expr_list(&mut self) -> Result<Vec<Expr>> {
        self.expect(Tok::LParen, "'(' opening expression list")?;
        let mut out = Vec::new();
        if self.eat(&Tok::RParen) {
            return Ok(out);
        }
        loop {
            out.push(self.parse_expr()?);
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        self.expect(Tok::RParen, "')' closing expression list")?;
        Ok(out)
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            if self.eat(&Tok::Plus) {
                let right = self.parse_multiplicative()?;
                left = Expr::Arith(ArithOp::Add, Box::new(left), Box::new(right));
            } else if self.eat(&Tok::Minus) {
                let right = self.parse_multiplicative()?;
                left = Expr::Arith(ArithOp::Sub, Box::new(left), Box::new(right));
            } else {
                return Ok(left);
            }
        }
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            if self.eat(&Tok::Star) {
                let right = self.parse_unary()?;
                left = Expr::Arith(ArithOp::Mul, Box::new(left), Box::new(right));
            } else if self.eat(&Tok::Slash) {
                let right = self.parse_unary()?;
                left = Expr::Arith(ArithOp::Div, Box::new(left), Box::new(right));
            } else {
                return Ok(left);
            }
        }
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.eat(&Tok::Bang) {
            Ok(Expr::Not(Box::new(self.parse_unary()?)))
        } else if self.eat(&Tok::Minus) {
            Ok(Expr::UnaryMinus(Box::new(self.parse_unary()?)))
        } else if self.eat(&Tok::Plus) {
            self.parse_unary()
        } else {
            self.parse_primary_expr()
        }
    }

    fn parse_primary_expr(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            Tok::LParen => {
                self.bump();
                let e = self.parse_expr()?;
                self.expect(Tok::RParen, "')' closing parenthesized expression")?;
                Ok(e)
            }
            Tok::Var(v) => {
                self.bump();
                Ok(Expr::Var(v))
            }
            Tok::IriRef(iri) => {
                self.bump();
                Ok(Expr::Iri(self.resolve(&iri)))
            }
            Tok::PName { prefix, local } => {
                self.bump();
                Ok(Expr::Iri(self.expand(&prefix, &local)?))
            }
            Tok::Str(_) | Tok::Number { .. } => {
                let tp = self.parse_graph_term()?;
                match tp {
                    TermPattern::Literal(l) => Ok(Expr::Literal(l)),
                    _ => self.err("expected a literal expression"),
                }
            }
            Tok::Word(w) => {
                if w.eq_ignore_ascii_case("true") {
                    self.bump();
                    return Ok(Expr::Literal(boolean_literal(true)));
                }
                if w.eq_ignore_ascii_case("false") {
                    self.bump();
                    return Ok(Expr::Literal(boolean_literal(false)));
                }
                if w.eq_ignore_ascii_case("EXISTS")
                    || (w.eq_ignore_ascii_case("NOT") && peek2_is_exists(self))
                {
                    return self.parse_exists();
                }
                if let Some(kind) = AggregateKind::from_name(&w) {
                    self.bump();
                    return self.parse_aggregate(kind);
                }
                if let Some(b) = Builtin::from_name(&w) {
                    self.bump();
                    let args = self.parse_expr_list()?;
                    return Ok(Expr::Call(b, args));
                }
                self.err(format!("unknown function or keyword '{w}' in expression"))
            }
            other => self.err(format!("expected an expression, found {other:?}")),
        }
    }

    fn parse_aggregate(&mut self, kind: AggregateKind) -> Result<Expr> {
        self.expect(Tok::LParen, "'(' opening aggregate")?;
        let distinct = self.eat_kw("DISTINCT");
        let expr = if matches!(kind, AggregateKind::Count) && self.eat(&Tok::Star) {
            None
        } else {
            Some(self.parse_expr()?)
        };
        let mut separator = None;
        if matches!(kind, AggregateKind::GroupConcat) && self.eat(&Tok::Semicolon) {
            self.expect_kw("SEPARATOR")?;
            self.expect(Tok::Eq, "'=' after SEPARATOR")?;
            separator = match self.bump() {
                Tok::Str(s) => Some(s),
                _ => return self.err("expected string after SEPARATOR="),
            };
        }
        self.expect(Tok::RParen, "')' closing aggregate")?;
        Ok(Expr::Aggregate(Box::new(AggregateExpr {
            kind,
            distinct,
            expr,
            separator,
        })))
    }
}

fn peek2_is_exists(p: &Parser) -> bool {
    matches!(p.peek2(), Tok::Word(w) if w.eq_ignore_ascii_case("EXISTS"))
}

fn peek2_is_in(p: &Parser) -> bool {
    matches!(p.peek2(), Tok::Word(w) if w.eq_ignore_ascii_case("IN"))
}

fn numeric_literal(lexical: &str, dot: bool, exp: bool) -> LiteralPattern {
    use feo_rdf::vocab::xsd;
    let dt = if exp {
        xsd::DOUBLE
    } else if dot {
        xsd::DECIMAL
    } else {
        xsd::INTEGER
    };
    LiteralPattern {
        lexical: lexical.to_string(),
        language: None,
        datatype: Some(dt.to_string()),
    }
}

fn boolean_literal(v: bool) -> LiteralPattern {
    use feo_rdf::vocab::xsd;
    LiteralPattern {
        lexical: if v { "true" } else { "false" }.to_string(),
        language: None,
        datatype: Some(xsd::BOOLEAN.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Query {
        parse_query(src).expect("query should parse")
    }

    #[test]
    fn minimal_select() {
        let q = parse("SELECT * WHERE { ?s ?p ?o }");
        assert!(matches!(
            q.form,
            QueryForm::Select {
                projection: Projection::All,
                ..
            }
        ));
        assert_eq!(q.where_pattern.elements.len(), 1);
    }

    #[test]
    fn select_distinct_with_vars() {
        let q = parse("SELECT DISTINCT ?a ?b WHERE { ?a ?p ?b }");
        match q.form {
            QueryForm::Select {
                distinct,
                projection: Projection::Items(items),
                ..
            } => {
                assert!(distinct);
                assert_eq!(items.len(), 2);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn prefixes_resolve() {
        let q = parse(
            "PREFIX feo: <https://purl.org/heals/feo#>\n\
             SELECT ?x WHERE { ?x a feo:Characteristic }",
        );
        match &q.where_pattern.elements[0] {
            GroupElement::Triples(ts) => {
                assert_eq!(
                    ts[0].object,
                    TermPattern::Iri("https://purl.org/heals/feo#Characteristic".into())
                );
            }
            _ => panic!(),
        }
    }

    #[test]
    fn property_path_plus() {
        let q = parse(
            "PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>\n\
             SELECT ?t WHERE { ?t (rdfs:subClassOf+) <http://e/C> }",
        );
        match &q.where_pattern.elements[0] {
            GroupElement::Triples(ts) => {
                assert!(matches!(ts[0].path, Path::OneOrMore(_)));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn path_operators_parse() {
        for (src, check) in [
            ("?a <p>/<q> ?b", "seq"),
            ("?a <p>|<q> ?b", "alt"),
            ("?a ^<p> ?b", "inv"),
            ("?a <p>* ?b", "star"),
            ("?a <p>? ?b", "opt"),
            ("?a !(<p>|<q>) ?b", "neg"),
        ] {
            let q = parse(&format!("SELECT * WHERE {{ {src} }}"));
            let GroupElement::Triples(ts) = &q.where_pattern.elements[0] else {
                panic!()
            };
            match check {
                "seq" => assert!(matches!(ts[0].path, Path::Sequence(_, _))),
                "alt" => assert!(matches!(ts[0].path, Path::Alternative(_, _))),
                "inv" => assert!(matches!(ts[0].path, Path::Inverse(_))),
                "star" => assert!(matches!(ts[0].path, Path::ZeroOrMore(_))),
                "opt" => assert!(matches!(ts[0].path, Path::ZeroOrOne(_))),
                "neg" => assert!(matches!(ts[0].path, Path::Negated(_))),
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn filter_not_exists() {
        let q = parse(
            "SELECT ?c WHERE { ?c a <http://e/C> . \
             FILTER NOT EXISTS { ?c <http://e/p> <http://e/x> } }",
        );
        assert!(q
            .where_pattern
            .elements
            .iter()
            .any(|e| matches!(e, GroupElement::Filter(Expr::Exists(_, true)))));
    }

    #[test]
    fn optional_and_bind() {
        let q = parse(
            "SELECT * WHERE { \
               BIND (<http://e/q1> as ?question) . \
               ?question <http://e/param> ?p . \
               OPTIONAL { ?p <http://e/x> ?y } }",
        );
        assert!(matches!(
            q.where_pattern.elements[0],
            GroupElement::Bind(_, _)
        ));
        assert!(q
            .where_pattern
            .elements
            .iter()
            .any(|e| matches!(e, GroupElement::Optional(_))));
    }

    #[test]
    fn union_chain() {
        let q = parse("SELECT * WHERE { { ?a <p> ?b } UNION { ?a <q> ?b } UNION { ?a <r> ?b } }");
        match &q.where_pattern.elements[0] {
            GroupElement::Union(arms) => assert_eq!(arms.len(), 3),
            other => panic!("expected union, got {other:?}"),
        }
    }

    #[test]
    fn values_single_and_multi() {
        let q = parse("SELECT * WHERE { VALUES ?x { <http://e/a> <http://e/b> } }");
        match &q.where_pattern.elements[0] {
            GroupElement::Values(v) => {
                assert_eq!(v.vars, vec!["x"]);
                assert_eq!(v.rows.len(), 2);
            }
            _ => panic!(),
        }
        let q = parse("SELECT * WHERE { VALUES (?x ?y) { (<http://e/a> 1) (UNDEF 2) } }");
        match &q.where_pattern.elements[0] {
            GroupElement::Values(v) => {
                assert_eq!(v.vars.len(), 2);
                assert_eq!(v.rows[1][0], None);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn group_by_aggregates() {
        let q = parse(
            "SELECT ?d (COUNT(?u) AS ?n) (AVG(?age) AS ?avg) \
             WHERE { ?u <http://e/diet> ?d ; <http://e/age> ?age } \
             GROUP BY ?d HAVING (COUNT(?u) > 1) ORDER BY DESC(?n) LIMIT 10 OFFSET 2",
        );
        assert_eq!(q.modifiers.group_by.len(), 1);
        assert_eq!(q.modifiers.having.len(), 1);
        assert_eq!(q.modifiers.order_by.len(), 1);
        assert!(q.modifiers.order_by[0].descending);
        assert_eq!(q.modifiers.limit, Some(10));
        assert_eq!(q.modifiers.offset, Some(2));
    }

    #[test]
    fn construct_and_ask() {
        let q = parse("CONSTRUCT { ?s <http://e/derived> ?o } WHERE { ?s <http://e/p> ?o }");
        assert!(matches!(q.form, QueryForm::Construct { .. }));
        let q = parse("ASK { <http://e/a> <http://e/p> <http://e/b> }");
        assert!(matches!(q.form, QueryForm::Ask));
    }

    #[test]
    fn expressions_full_grammar() {
        let q = parse(
            r#"SELECT ?x WHERE { ?x <http://e/v> ?v .
               FILTER (?v > 2 && ?v <= 10 || !(?v = 5))
               FILTER (CONTAINS(STR(?x), "apple"))
               FILTER (?v IN (1, 2, 3) && ?v NOT IN (9))
               FILTER (REGEX(STR(?x), "^http", "i"))
               BIND (IF(BOUND(?v), ?v * 2 - 1, 0) AS ?w) }"#,
        );
        let filters = q
            .where_pattern
            .elements
            .iter()
            .filter(|e| matches!(e, GroupElement::Filter(_)))
            .count();
        assert_eq!(filters, 4);
    }

    #[test]
    fn blank_node_property_list_in_query() {
        let q = parse("SELECT ?v WHERE { ?x <http://e/p> [ <http://e/q> ?v ] }");
        let GroupElement::Triples(ts) = &q.where_pattern.elements[0] else {
            panic!()
        };
        assert_eq!(ts.len(), 2);
    }

    #[test]
    fn paper_listing_one_shape_parses() {
        // The shape of the paper's Listing 1 (contextual explanation CQ).
        let q = parse(
            r#"PREFIX feo: <https://purl.org/heals/feo#>
               PREFIX eo: <https://purl.org/heals/eo#>
               PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
               SELECT DISTINCT ?characteristic ?classes
               WHERE {
                 BIND (feo:WhyEatCauliflowerPotatoCurry as ?question) .
                 ?question feo:hasParameter ?parameter .
                 ?parameter feo:hasCharacteristic ?characteristic .
                 ?characteristic a ?classes .
                 ?classes rdfs:subClassOf feo:SystemCharacteristic .
                 FILTER NOT EXISTS { ?classes rdfs:subClassOf eo:knowledge } .
               }"#,
        );
        assert!(matches!(q.form, QueryForm::Select { distinct: true, .. }));
    }

    #[test]
    fn paper_listing_two_shape_parses() {
        let q = parse(
            r#"PREFIX feo: <https://purl.org/heals/feo#>
               PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
               SELECT DISTINCT ?factType ?factA ?foilType ?foilB
               WHERE {
                 BIND (feo:WhyEatAOverB as ?question) .
                 ?question feo:hasPrimaryParameter ?parameterA .
                 ?question feo:hasSecondaryParameter ?parameterB .
                 ?parameterA feo:hasCharacteristic ?factA .
                 ?factA a <https://purl.org/heals/eo#Fact> .
                 ?factA a ?factType .
                 ?factType (rdfs:subClassOf+) feo:Characteristic .
                 FILTER NOT EXISTS { ?factType rdfs:subClassOf <https://purl.org/heals/eo#knowledge> } .
                 FILTER NOT EXISTS { ?s rdfs:subClassOf ?factType } .
                 ?parameterB feo:hasCharacteristic ?foilB .
                 ?foilB a <https://purl.org/heals/eo#Foil> .
                 ?foilB a ?foilType .
                 ?foilType (rdfs:subClassOf+) feo:Characteristic .
                 FILTER NOT EXISTS { ?foilType rdfs:subClassOf <https://purl.org/heals/eo#knowledge> } .
                 FILTER NOT EXISTS { ?t rdfs:subClassOf ?foilType } .
               }"#,
        );
        assert!(matches!(q.form, QueryForm::Select { distinct: true, .. }));
    }

    #[test]
    fn errors_are_located() {
        let err = parse_query("SELECT ?x WHERE { ?x <http://e/p> }").unwrap_err();
        assert!(matches!(err, SparqlError::Parse { .. }));
        let err = parse_query("SELECT").unwrap_err();
        assert!(matches!(err, SparqlError::Parse { .. }));
        let err = parse_query("FROB ?x { }").unwrap_err();
        assert!(matches!(err, SparqlError::Parse { .. }));
    }

    #[test]
    fn undeclared_prefix_is_error() {
        assert!(parse_query("SELECT * WHERE { ?x nope:p ?y }").is_err());
    }
}
