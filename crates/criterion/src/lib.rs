//! Offline drop-in subset of the `criterion` 0.5 API.
//!
//! The workspace pins `criterion = "0.5"` but this build environment has
//! no registry access, so this path crate implements the surface the
//! bench targets use — [`Criterion::benchmark_group`],
//! `bench_function` / `bench_with_input`, [`BenchmarkId`],
//! [`Throughput`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros — with genuine wall-clock measurement: each benchmark is
//! warmed up, an iteration count is chosen to fill a fixed measurement
//! window, and the mean per-iteration time is printed in criterion's
//! familiar `time: [..]` shape. No statistics, plots, or baselines.
//!
//! Positional CLI arguments act as substring filters on
//! `group/benchmark` ids, so `cargo bench --bench x -- some_filter`
//! works as upstream.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct Criterion {
    filters: Vec<String>,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Positional args (no leading '-') are benchmark-name filters;
        // flags cargo passes (`--bench`, `--test`) are ignored.
        let filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        Criterion {
            filters,
            measurement_time: Duration::from_millis(400),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
            throughput: None,
        }
    }

    fn matches(&self, id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f.as_str()))
    }
}

pub struct BenchmarkGroup<'c> {
    c: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub sizes runs by wall
    /// clock, not sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.c.measurement_time = t;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        if self.c.matches(&full) {
            let mut b = Bencher {
                warm_up: self.c.warm_up_time,
                measure: self.c.measurement_time,
                result: None,
            };
            f(&mut b);
            report(&full, self.throughput, b.result);
        }
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

#[derive(Clone, Copy, Debug)]
struct Measurement {
    mean: Duration,
    iters: u64,
}

pub struct Bencher {
    warm_up: Duration,
    measure: Duration,
    result: Option<Measurement>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up window elapses (at least once)
        // and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_iters == 0 || warm_start.elapsed() < self.warm_up {
            black_box(f());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let est = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        // Size the measured run to fill the measurement window.
        let iters = ((self.measure.as_secs_f64() / est.max(1e-9)) as u64).clamp(1, 10_000_000);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let total = start.elapsed();
        self.result = Some(Measurement {
            mean: total / iters as u32,
            iters,
        });
    }
}

fn format_time(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn report(id: &str, throughput: Option<Throughput>, m: Option<Measurement>) {
    let Some(m) = m else {
        println!("{id:<40} (no measurement)");
        return;
    };
    let mut line = format!(
        "{id:<40} time: [{} {} {}]",
        format_time(m.mean),
        format_time(m.mean),
        format_time(m.mean)
    );
    let per_sec = 1.0 / m.mean.as_secs_f64().max(1e-12);
    match throughput {
        Some(Throughput::Elements(n)) => {
            line.push_str(&format!(" thrpt: {:.2} Kelem/s", n as f64 * per_sec / 1e3));
        }
        Some(Throughput::Bytes(n)) => {
            line.push_str(&format!(
                " thrpt: {:.2} MiB/s",
                n as f64 * per_sec / (1024.0 * 1024.0)
            ));
        }
        None => {}
    }
    line.push_str(&format!(" ({} iters)", m.iters));
    println!("{line}");
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_a_cheap_closure() {
        let mut c = Criterion {
            filters: vec![],
            measurement_time: Duration::from_millis(10),
            warm_up_time: Duration::from_millis(2),
        };
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn filters_skip_non_matching() {
        let mut c = Criterion {
            filters: vec!["only_this".into()],
            measurement_time: Duration::from_millis(10),
            warm_up_time: Duration::from_millis(2),
        };
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group.bench_function("other", |b| {
            b.iter(|| ());
            ran = true;
        });
        assert!(!ran);
    }
}
